"""CSD coefficient quantization under a nonzero-digit budget.

Reduced-complexity filters (Section 3 of the paper, refs [6]-[8]) restrict
each coefficient to a small number of signed power-of-two terms.  This
module quantizes ideal (float) coefficients onto that constrained grid:

* :func:`quantize_to_csd` finds, for one coefficient, the representable
  value closest to the ideal one among all candidates within a local
  search window that satisfy the digit budget — the local-search flavour
  of Samueli's algorithm.
* :func:`quantize_filter` applies it to a whole tap vector and reports
  aggregate statistics (adder terms, quantization error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import CsdError
from .encode import csd_decode, csd_encode, csd_nonzero_digits

__all__ = ["QuantizedCoefficient", "quantize_to_csd", "quantize_filter"]


@dataclass(frozen=True)
class QuantizedCoefficient:
    """One coefficient mapped onto the CSD grid.

    Attributes
    ----------
    ideal:
        The requested float value.
    raw:
        Quantized integer such that ``value = raw * 2**-frac``.
    frac:
        Number of fractional bits of the grid.
    digits:
        CSD digits of ``abs(raw)``, LSB first.  The sign is carried by
        ``raw`` so that downstream hardware can realize negative
        coefficients with a subtractor at the accumulation stage.
    """

    ideal: float
    raw: int
    frac: int
    digits: tuple

    @property
    def value(self) -> float:
        """Quantized engineering value."""
        return self.raw * 2.0**-self.frac

    @property
    def nonzeros(self) -> int:
        """Number of shift-add terms needed to realize the magnitude."""
        return csd_nonzero_digits(self.digits)

    @property
    def error(self) -> float:
        """Absolute quantization error ``|value - ideal|``."""
        return abs(self.value - self.ideal)


def quantize_to_csd(
    value: float,
    frac: int,
    max_nonzeros: int,
    search_radius: int = 64,
) -> QuantizedCoefficient:
    """Quantize ``value`` to at most ``max_nonzeros`` CSD digits.

    The search examines every integer within ``search_radius`` grid steps
    of the rounded ideal value and keeps the closest one whose CSD form
    respects the budget.  Zero is always a candidate, so the search cannot
    fail; a tight budget simply forces coarser coefficients.
    """
    if max_nonzeros < 1:
        raise CsdError(f"max_nonzeros must be >= 1, got {max_nonzeros}")
    if frac < 0:
        raise CsdError(f"frac must be >= 0, got {frac}")
    target = value * (1 << frac)
    center = int(np.floor(target + 0.5))
    candidates = set(range(center - search_radius, center + search_radius + 1))
    # The greedy fallback — keep only the most significant budgeted digits
    # of the centred CSD — is always within budget, so a coarse value
    # never loses to zero just because the local window missed it.
    candidates.add(_truncate_to_budget(center, max_nonzeros))
    best_raw = 0
    best_err = abs(target)  # error of the zero candidate, in grid units
    for candidate in sorted(candidates):
        if candidate == 0:
            continue
        if csd_nonzero_digits(csd_encode(abs(candidate))) > max_nonzeros:
            continue
        err = abs(candidate - target)
        if err < best_err - 1e-12:
            best_raw = candidate
            best_err = err
    digits = tuple(csd_encode(abs(best_raw)))
    return QuantizedCoefficient(ideal=float(value), raw=best_raw, frac=frac, digits=digits)


def _truncate_to_budget(value: int, max_nonzeros: int) -> int:
    """Keep only the ``max_nonzeros`` most significant CSD digits."""
    digits = csd_encode(abs(value))
    kept = 0
    for k in range(len(digits) - 1, -1, -1):
        if digits[k] != 0:
            kept += 1
            if kept == max_nonzeros:
                digits = [0] * k + digits[k:]
                break
    magnitude = csd_decode(digits)
    return -magnitude if value < 0 else magnitude


def quantize_filter(
    coefficients: Sequence[float],
    frac: int,
    max_nonzeros: int,
    search_radius: int = 64,
) -> List[QuantizedCoefficient]:
    """Quantize a tap vector coefficient-by-coefficient."""
    return [
        quantize_to_csd(float(c), frac, max_nonzeros, search_radius)
        for c in coefficients
    ]
