"""Canonic-signed-digit coefficient arithmetic and multiplier planning."""

from .encode import (
    csd_decode,
    csd_encode,
    csd_from_string,
    csd_nonzero_digits,
    csd_to_string,
    is_canonical,
)
from .optimize import QuantizedCoefficient, quantize_filter, quantize_to_csd
from .multiplier import MultiplierPlan, ShiftAddTerm, plan_multiplier

__all__ = [
    "csd_encode",
    "csd_decode",
    "csd_nonzero_digits",
    "is_canonical",
    "csd_to_string",
    "csd_from_string",
    "QuantizedCoefficient",
    "quantize_to_csd",
    "quantize_filter",
    "MultiplierPlan",
    "ShiftAddTerm",
    "plan_multiplier",
]
