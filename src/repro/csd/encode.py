"""Canonic signed digit (CSD) encoding.

A CSD representation writes an integer as a sum of signed powers of two
with the *canonical* property that no two adjacent digits are nonzero.
It is the standard representation for multiplierless filter hardware
(Samueli 1989, FIRGEN): each nonzero digit of a coefficient becomes one
shift-and-add/subtract term, so minimizing nonzero digits minimizes adder
count.

Digits are stored LSB-first as small ints in ``{-1, 0, +1}``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import CsdError

__all__ = [
    "csd_encode",
    "csd_decode",
    "csd_nonzero_digits",
    "is_canonical",
    "csd_to_string",
    "csd_from_string",
]


def csd_encode(value: int) -> List[int]:
    """Encode an integer as CSD digits, LSB first.

    Uses the classic non-adjacent-form recurrence: while bits remain, an
    odd residue takes digit ``2 - (value mod 4)`` (i.e. +1 when the next
    bit is 0, −1 when it is 1, which guarantees the following digit is 0).
    The encoding of 0 is the empty list.
    """
    if value == 0:
        return []
    digits: List[int] = []
    v = int(value)
    while v != 0:
        if v & 1:
            d = 2 - (v & 3)  # +1 if v ≡ 1 (mod 4), -1 if v ≡ 3 (mod 4)
            digits.append(d)
            v -= d
        else:
            digits.append(0)
        v >>= 1
    return digits


def csd_decode(digits: Sequence[int]) -> int:
    """Inverse of :func:`csd_encode` (accepts any signed-digit string)."""
    value = 0
    for k, d in enumerate(digits):
        if d not in (-1, 0, 1):
            raise CsdError(f"digit {d!r} at position {k} not in {{-1,0,1}}")
        value += d << k
    return value


def csd_nonzero_digits(digits: Sequence[int]) -> int:
    """Number of nonzero digits (the hardware adder-term count)."""
    return sum(1 for d in digits if d != 0)


def is_canonical(digits: Sequence[int]) -> bool:
    """True when no two adjacent digits are both nonzero."""
    return all(
        not (digits[k] != 0 and digits[k + 1] != 0) for k in range(len(digits) - 1)
    )


def csd_to_string(digits: Sequence[int]) -> str:
    """Render digits MSB-first using ``+``, ``-`` and ``0``."""
    if not digits:
        return "0"
    symbols = {1: "+", 0: "0", -1: "-"}
    return "".join(symbols[d] for d in reversed(list(digits)))


def csd_from_string(text: str) -> List[int]:
    """Parse the output of :func:`csd_to_string` back to LSB-first digits."""
    mapping = {"+": 1, "0": 0, "-": -1}
    try:
        msb_first = [mapping[ch] for ch in text.strip()]
    except KeyError as exc:
        raise CsdError(f"invalid CSD character {exc.args[0]!r}") from None
    digits = list(reversed(msb_first))
    while digits and digits[-1] == 0:
        digits.pop()
    return digits
