"""Frequency-domain compatible BIST for high-performance digital filters.

A full reproduction of L. Goodby and A. Orailoglu, "Frequency-Domain
Compatibility in Digital Filter BIST" (DAC 1997): multiplierless FIR
datapath substrates, gate-accurate single-stuck-at fault models, the
paper's test-pattern generators, frequency-domain testability analyses,
and the complete experiment suite (Tables 1-6, Figures 1-13).

Quick start::

    from repro import filters, generators, faultsim

    design = filters.lowpass_design()
    gen = generators.Type1Lfsr(12)
    result = faultsim.run_fault_coverage(design, gen, 4096)
    print(result.coverage(), result.missed())

Package map
-----------
``repro.fixedpoint``  two's-complement arithmetic primitives
``repro.csd``         canonic-signed-digit coefficients and multiplier plans
``repro.rtl``         datapath graphs, builders, scaling, simulation
``repro.gates``       gate-level cells, netlists, exact fault injection
``repro.faultsim``    fault universes and the fast coverage engine
``repro.generators``  LFSR / ramp / sine / noise / mixed test generators
``repro.analysis``    spectra, LFSR linear models, variance, distributions
``repro.filters``     the three Table 1 reference designs
``repro.bist``        MISR compaction, sessions, generator selection
``repro.experiments`` drivers for every table and figure
``repro.telemetry``   spans, metrics, sinks, test-zone tracing
"""

from . import (
    analysis,
    bist,
    csd,
    errors,
    experiments,
    faultsim,
    filters,
    fixedpoint,
    gates,
    generators,
    rtl,
    telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "bist",
    "csd",
    "errors",
    "experiments",
    "faultsim",
    "filters",
    "fixedpoint",
    "gates",
    "generators",
    "rtl",
    "telemetry",
    "__version__",
]
