"""Automated test-generator selection (formalizing Table 3 + Section 9).

Given a filter design, rank candidate generators by the frequency-domain
compatibility metric, and propose a test scheme: the best single-mode
generator, or — per the paper's recommendation — a mixed scheme pairing
a CUT-compatible generator with the maximum-variance mode that covers
upper bits and flattens the spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.compatibility import CompatibilityResult, compatibility_ratio
from ..analysis.spectrum import generator_spectrum
from ..generators.base import TestGenerator
from ..generators.mixed import MixedModeLfsr, SwitchedGenerator
from ..generators.ramp import RampGenerator
from ..generators.variants import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    Type1Lfsr,
    Type2Lfsr,
)
from ..rtl.build import FilterDesign

__all__ = ["GeneratorRanking", "default_candidates", "rank_generators",
           "propose_scheme"]


@dataclass
class GeneratorRanking:
    """One candidate's compatibility with the target design."""

    generator: TestGenerator
    result: CompatibilityResult

    @property
    def ratio(self) -> float:
        return self.result.ratio

    @property
    def rating(self) -> str:
        return self.result.rating


def default_candidates(width: int) -> List[TestGenerator]:
    """The paper's Section 6 generator menagerie at a given width."""
    return [
        Type1Lfsr(width),
        Type2Lfsr(width),
        DecorrelatedLfsr(width),
        MaxVarianceLfsr(width),
        RampGenerator(width),
    ]


def rank_generators(
    design: FilterDesign,
    candidates: Optional[Sequence[TestGenerator]] = None,
) -> List[GeneratorRanking]:
    """Rank candidates by compatibility ratio with the design, best first."""
    if candidates is None:
        candidates = default_candidates(design.input_fmt.width)
    h = design.coefficients
    rankings: List[GeneratorRanking] = []
    for gen in candidates:
        freqs, power = generator_spectrum(gen)
        sigma_y2, flat = compatibility_ratio(freqs, power, h)
        rankings.append(
            GeneratorRanking(
                generator=gen,
                result=CompatibilityResult(
                    generator=gen.name, filter_name=design.name,
                    sigma_y2=sigma_y2, flat_sigma_y2=flat,
                ),
            )
        )
    rankings.sort(key=lambda r: -r.ratio)
    return rankings


def propose_scheme(
    design: FilterDesign,
    n_vectors: int,
    prefer_mixed: bool = True,
) -> TestGenerator:
    """Propose a test generator for a design.

    With ``prefer_mixed`` (the paper's Section 9 recommendation), the
    scheme is a single Type 1 LFSR switched to maximum-variance mode
    halfway when the Type 1 spectrum alone is compatible, or a
    decorrelated LFSR front half otherwise (narrowband-lowpass CUTs,
    where the Type 1 rolloff starves the passband).
    """
    width = design.input_fmt.width
    if not prefer_mixed:
        return rank_generators(design)[0].generator
    type1_rating = next(
        r for r in rank_generators(design) if isinstance(r.generator, Type1Lfsr)
    )
    if type1_rating.rating == "-":
        return SwitchedGenerator(
            [(DecorrelatedLfsr(width), n_vectors // 2),
             (MaxVarianceLfsr(width), None)],
            name=f"LFSR-D+M/{width}",
        )
    return MixedModeLfsr(width, switch_after=n_vectors // 2)
