"""Hardware cost accounting for test schemes.

The paper's closing argument is economic: the mixed scheme reduces missed
faults "at little added cost".  This module puts numbers on that claim by
tallying each scheme's test hardware (flip-flops, 2-input-gate
equivalents, ROM words) and relating it to the size of the
circuit-under-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..generators.base import TestGenerator
from ..rtl.build import FilterDesign
from ..rtl.nodes import OpKind

__all__ = ["SchemeCost", "scheme_cost", "cost_table", "cut_gate_estimate"]

#: Gate-equivalents per full-adder cell (2 XOR + 2 AND + 1 OR).
_GATES_PER_CELL = 5
#: Gate-equivalents per flip-flop (a common synthesis-area convention).
_GATES_PER_DFF = 6


def cut_gate_estimate(design: FilterDesign) -> int:
    """Rough gate-equivalent size of the circuit under test."""
    cells = sum(n.fmt.width for n in design.graph.arithmetic_nodes)
    reg_bits = sum(n.fmt.width for n in design.graph.nodes
                   if n.kind is OpKind.DELAY)
    return cells * _GATES_PER_CELL + reg_bits * _GATES_PER_DFF


@dataclass(frozen=True)
class SchemeCost:
    """Test-hardware bill of one generator scheme."""

    name: str
    dff: int
    gates: int
    rom_words: int

    @property
    def gate_equivalents(self) -> int:
        """Single-number cost (ROM words weighted like registers)."""
        return (self.gates + self.dff * _GATES_PER_DFF
                + self.rom_words * _GATES_PER_DFF)

    def overhead_percent(self, design: FilterDesign) -> float:
        """Test hardware as a percentage of the CUT size."""
        return 100.0 * self.gate_equivalents / max(1, cut_gate_estimate(design))


def scheme_cost(generator: TestGenerator) -> SchemeCost:
    """Cost of one generator scheme from its self-reported tally."""
    raw: Dict[str, int] = generator.hardware_cost()
    return SchemeCost(
        name=generator.name,
        dff=int(raw.get("dff", 0)),
        gates=int(raw.get("gates", 0)),
        rom_words=int(raw.get("rom_words", 0)),
    )


def cost_table(
    design: FilterDesign, generators: Sequence[TestGenerator]
) -> List[Tuple[str, int, int, int, float]]:
    """Rows of (name, dff, gates, rom, overhead %) for a set of schemes."""
    rows = []
    for gen in generators:
        c = scheme_cost(gen)
        rows.append((c.name, c.dff, c.gates, c.rom_words,
                     round(c.overhead_percent(design), 2)))
    return rows
