"""Multiple-input signature register (MISR) response compaction.

The BIST architecture the paper assumes is "a single generator at the
input to the filter and a compressor at the output"; its fault-simulation
results assume *no aliasing* in the response analyzer.  This module
provides the standard MISR compressor plus an ideal (alias-free)
reference compactor so sessions can quantify the (tiny) aliasing risk a
real MISR adds.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import GeneratorError
from ..generators.polynomials import default_poly, degree
from ..telemetry import get_telemetry

__all__ = ["Misr", "AccumulatorCompactor", "ideal_signature",
           "note_aliasing_event"]


def note_aliasing_event(compactor: str = "misr", n: int = 1) -> None:
    """Count a compaction aliasing event on the active telemetry.

    An aliasing event is a session whose faulty response differs from
    the fault-free one yet compacts to the golden signature — the escape
    mechanism the paper's "alias-free response analyzer" assumption
    rules out.  Callers that compare signatures against a known response
    difference (e.g. :meth:`repro.bist.session.BistSession.screen_fault`
    or the aliasing benches) report them here.
    """
    tel = get_telemetry()
    if tel.enabled:
        tel.counter(f"bist.{compactor}.aliasing_events").add(n)


class Misr:
    """A Galois-style multiple-input signature register.

    Each cycle the register advances one LFSR step and XORs the input
    word into its state.  Words wider than the MISR are folded (XOR of
    width-sized chunks); narrower words are zero-extended.
    """

    def __init__(self, width: int, poly: int = 0, seed: int = 0):
        if width < 2:
            raise GeneratorError(f"MISR width must be >= 2, got {width}")
        self.width = width
        self.poly = poly or default_poly(width)
        if degree(self.poly) != width:
            raise GeneratorError(
                f"polynomial degree {degree(self.poly)} != width {width}"
            )
        self.seed = seed & ((1 << width) - 1)
        self.reset()

    def reset(self) -> None:
        self._state = self.seed

    @property
    def state(self) -> int:
        return self._state

    def _fold(self, word: int) -> int:
        mask = (1 << self.width) - 1
        word &= (1 << (2 * self.width)) - 1  # clamp pathological widths
        folded = 0
        while word:
            folded ^= word & mask
            word >>= self.width
        return folded

    def absorb(self, words: Iterable[int]) -> int:
        """Clock the MISR over a sequence of raw words; returns the state."""
        mask = (1 << self.width) - 1
        low = self.poly & mask
        state = self._state
        arr = np.asarray(list(words), dtype=np.int64)
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("bist.misr.words_absorbed").add(int(arr.size))
        for w in arr:
            msb = (state >> (self.width - 1)) & 1
            state = ((state << 1) & mask) ^ (low if msb else 0)
            state ^= self._fold(int(w) & mask)  # & maps negatives two's-complement
        self._state = state
        return state

    def signature(self, words: Iterable[int]) -> int:
        """``reset()`` then absorb — the signature of one session."""
        self.reset()
        return self.absorb(words)

    def aliasing_probability(self, test_length: int) -> float:
        """Classic asymptotic aliasing estimate ``2**-width``.

        Independent of test length for maximal-length feedback once the
        session is long compared to the register, which is why the paper
        can treat the compactor as alias-free.
        """
        if test_length <= 0:
            raise GeneratorError("test_length must be positive")
        return 2.0 ** -self.width


class AccumulatorCompactor:
    """Accumulator-based response compaction (arithmetic BIST style).

    Rotating-carry accumulation of the response words modulo ``2**width``
    — attractive in DSP datapaths because an adder is already there (the
    same hardware-reuse argument as the paper's ref [10] on the
    *generation* side).  Aliasing behaves differently from a MISR:
    errors cancel when they sum to a multiple of ``2**width`` over the
    session, so sign-symmetric error patterns (common for wrapped
    upper-bit faults) alias more readily.  The comparison bench
    quantifies this against the MISR.
    """

    def __init__(self, width: int, rotate: bool = True):
        if width < 2:
            raise GeneratorError(f"compactor width must be >= 2, got {width}")
        self.width = width
        self.rotate = rotate
        self.reset()

    def reset(self) -> None:
        self._acc = 0

    @property
    def state(self) -> int:
        return self._acc

    def absorb(self, words: Iterable[int]) -> int:
        mask = (1 << self.width) - 1
        acc = self._acc
        for w in np.asarray(list(words), dtype=np.int64):
            total = acc + (int(w) & mask)
            carry = total >> self.width
            acc = total & mask
            if self.rotate and carry:
                acc = (acc + 1) & mask  # rotate the carry back into bit 0
        self._acc = acc
        return acc

    def signature(self, words: Iterable[int]) -> int:
        self.reset()
        return self.absorb(words)


def ideal_signature(words: Iterable[int]) -> int:
    """An alias-free reference compactor (a hash of the full response).

    Models the paper's "no aliasing in the response analyzer" assumption:
    two responses compare equal iff they are identical.
    """
    arr = np.asarray(list(words), dtype=np.int64)
    return hash(arr.tobytes())
