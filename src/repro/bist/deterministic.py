"""Deterministic BIST top-off sequences (the conclusion's future work).

The paper's closing list of escalation options includes "use of more
specialized test controllers to produce tests tailored to the specific
filter (deterministic BIST)".  This module implements the natural such
controller for linear datapaths: **matched-filter bursts**.

For a target operator with subfilter impulse response ``h``, the input
burst ``u[n] = a * sign(h[M-1-n])`` drives the operator's value to
``±a * L1(h)`` — the absolute maximum reachable at amplitude ``a``.
Sweeping ``a`` walks the operator's value through the Figure 1 test
zones near ±0.5 and ±1 that pseudorandom signals almost never reach,
while the burst's transient tail supplies variety on the secondary input
and carry bits.  A short pseudorandom top-off after the bursts restores
low-bit activity.

The generated sequence is deterministic, so on-chip it corresponds to a
small ROM/controller, which is exactly the cost the paper is weighing
against pseudorandom schemes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import DesignError
from ..faultsim.dictionary import FaultUniverse
from ..faultsim.engine import CoverageResult, coverage_of_tracker
from ..faultsim.patterns import track_patterns
from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from ..rtl.impulse import impulse_responses

__all__ = ["matched_burst", "deterministic_sequence", "DeterministicGenerator",
           "deterministic_topoff"]

#: Normalized operator-value targets: both overflow-adjacent extremes and
#: both sides of the ±0.5 zone boundaries (T1/T6 territory).
DEFAULT_TARGETS = (0.995, 0.76, 0.53, 0.49, 0.27)


def matched_burst(
    design: FilterDesign,
    node_id: int,
    target: float,
    polarity: int = 1,
) -> np.ndarray:
    """Input burst driving one operator's value to ``polarity*target``.

    ``target`` is in the operator's normalized units; amplitudes beyond
    what full-scale input can reach are clipped.  Returns raw input words.
    """
    h = impulse_responses(design.graph)[node_id].h
    l1 = float(np.sum(np.abs(h)))
    if l1 <= 0:
        raise DesignError(f"node {node_id} is not reachable from the input")
    node = design.graph.node(node_id)
    input_fmt = design.input_fmt
    input_peak = input_fmt.max_value
    # amplitude (fraction of input full scale) that lands on the target
    amp = target * node.fmt.half_scale / (input_peak * l1)
    amp = min(amp, 1.0)
    signs = np.sign(h[::-1])
    signs[signs == 0] = 1.0
    raw = np.floor(polarity * amp * signs * input_fmt.max_raw + 0.5)
    return np.clip(raw, input_fmt.min_raw, input_fmt.max_raw).astype(np.int64)


def deterministic_sequence(
    design: FilterDesign,
    node_ids: Iterable[int],
    targets: Sequence[float] = DEFAULT_TARGETS,
    gap: int = 4,
) -> np.ndarray:
    """Concatenated matched bursts for a set of target operators.

    ``gap`` zero samples separate bursts so each burst's peak is clean.
    Bursts for both polarities of every target level are emitted.
    """
    chunks: List[np.ndarray] = []
    pad = np.zeros(gap, dtype=np.int64)
    for nid in node_ids:
        for target in targets:
            for polarity in (1, -1):
                chunks.append(matched_burst(design, nid, target, polarity))
                chunks.append(pad)
    if not chunks:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(chunks)


class DeterministicGenerator(TestGenerator):
    """Replays a precomputed deterministic sequence (cycling if needed)."""

    def __init__(self, sequence: np.ndarray, width: int, name: str = ""):
        super().__init__(width, name or "Deterministic")
        if len(sequence) == 0:
            raise DesignError("deterministic sequence must be non-empty")
        self._sequence = np.asarray(sequence, dtype=np.int64)
        self.reset()

    def __len__(self) -> int:
        return len(self._sequence)

    def reset(self) -> None:
        self._pos = 0

    def generate(self, n: int) -> np.ndarray:
        idx = (self._pos + np.arange(n)) % len(self._sequence)
        self._pos += n
        return self._sequence[idx]

    def hardware_cost(self):
        # A ROM of len words plus an address counter.
        return {"dff": self.width, "gates": 0,
                "rom_words": len(self._sequence)}


def deterministic_topoff(
    design: FilterDesign,
    universe: FaultUniverse,
    base_generator: TestGenerator,
    n_base: int,
    targets: Sequence[float] = DEFAULT_TARGETS,
) -> Tuple[CoverageResult, CoverageResult, int]:
    """Pseudorandom session plus targeted deterministic bursts.

    Runs ``n_base`` vectors of ``base_generator``, finds the operators
    still hosting missed faults, appends matched bursts aimed at them,
    and grades the combined session.  Returns ``(base_result,
    combined_result, n_deterministic)``.
    """
    raw_base = match_width(base_generator.sequence(n_base),
                           base_generator.width, design.input_fmt.width)
    tracker = track_patterns(design.graph, universe, raw_base)
    base = coverage_of_tracker(tracker, design_name=design.name,
                               generator_name=base_generator.name)
    base_missed = base.missed_faults()
    target_nodes: Dict[int, int] = {}
    for f in base_missed:
        target_nodes[f.node_id] = target_nodes.get(f.node_id, 0) + 1
    seq = deterministic_sequence(design, sorted(target_nodes), targets)
    if len(seq):
        track_patterns(design.graph, universe, seq, tracker=tracker)
    combined = coverage_of_tracker(
        tracker, design_name=design.name,
        generator_name=f"{base_generator.name}+deterministic",
    )
    return base, combined, len(seq)
