"""BIST assembly: response compaction, end-to-end sessions and automated
generator selection."""

from .misr import AccumulatorCompactor, Misr, ideal_signature
from .session import BistOutcome, BistSession
from .deterministic import (
    DeterministicGenerator,
    deterministic_sequence,
    deterministic_topoff,
    matched_burst,
)
from .cost import SchemeCost, cost_table, cut_gate_estimate, scheme_cost
from .diagnosis import DiagnosisResult, SignatureDictionary
from .selection import (
    GeneratorRanking,
    default_candidates,
    propose_scheme,
    rank_generators,
)

__all__ = [
    "Misr",
    "AccumulatorCompactor",
    "ideal_signature",
    "BistSession",
    "BistOutcome",
    "GeneratorRanking",
    "default_candidates",
    "rank_generators",
    "propose_scheme",
    "DeterministicGenerator",
    "matched_burst",
    "deterministic_sequence",
    "deterministic_topoff",
    "SchemeCost",
    "scheme_cost",
    "cost_table",
    "cut_gate_estimate",
    "DiagnosisResult",
    "SignatureDictionary",
]
