"""Signature-dictionary fault diagnosis.

A BIST pass/fail bit says *that* a device is broken; manufacturing debug
wants to know *where*.  The classic low-cost answer reuses the BIST
hardware: precompute the faulty MISR signature of every candidate fault
(bit-true injection), store the dictionary, and look failing devices up
by their observed signature.  Multiple sessions with different
generators shrink ambiguity groups multiplicatively — each session is an
independent hash of the fault's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..faultsim.dictionary import DesignFault
from ..faultsim.inject import to_injected_fault
from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from ..rtl.simulate import simulate
from .misr import Misr

__all__ = ["DiagnosisResult", "SignatureDictionary"]


@dataclass
class DiagnosisResult:
    """Outcome of looking up an observed signature tuple."""

    candidates: List[DesignFault]
    sessions_used: int

    @property
    def resolved(self) -> bool:
        """True when the signature pins a single candidate fault."""
        return len(self.candidates) == 1

    @property
    def ambiguity(self) -> int:
        return len(self.candidates)


class SignatureDictionary:
    """Precomputed fault → signature-tuple dictionary.

    Parameters
    ----------
    design:
        The circuit under test.
    sessions:
        ``(generator, n_vectors)`` pairs; each contributes one signature
        per fault.  More sessions = smaller ambiguity groups.
    misr_width:
        Compactor width (defaults to the design output width).
    """

    def __init__(
        self,
        design: FilterDesign,
        sessions: Sequence[Tuple[TestGenerator, int]],
        misr_width: Optional[int] = None,
    ):
        if not sessions:
            raise SimulationError("need at least one session")
        self.design = design
        self.sessions = list(sessions)
        self._misr = Misr(misr_width or design.output_fmt.width)
        self._stimuli = []
        self.golden: Tuple[int, ...] = ()
        goldens = []
        for gen, n in self.sessions:
            if n <= 0:
                raise SimulationError("session lengths must be positive")
            raw = match_width(gen.sequence(n), gen.width,
                              design.input_fmt.width)
            self._stimuli.append(raw)
            out = simulate(design.graph, raw).raw(design.graph.output_id)
            goldens.append(self._misr.signature(out))
        self.golden = tuple(goldens)
        self._table: Dict[Tuple[int, ...], List[DesignFault]] = {}
        self._built_count = 0

    # ------------------------------------------------------------------
    # Dictionary construction
    # ------------------------------------------------------------------
    def signature_of(self, fault: DesignFault) -> Tuple[int, ...]:
        """The fault's signature tuple across all sessions (bit-true)."""
        injected = to_injected_fault(fault)
        sigs = []
        for raw in self._stimuli:
            out = simulate(self.design.graph, raw,
                           fault=injected).raw(self.design.graph.output_id)
            sigs.append(self._misr.signature(out))
        return tuple(sigs)

    def build(self, candidates: Sequence[DesignFault]) -> None:
        """Add candidate faults to the dictionary."""
        for fault in candidates:
            sig = self.signature_of(fault)
            if sig == self.golden:
                continue  # undetected by every session: not diagnosable
            self._table.setdefault(sig, []).append(fault)
            self._built_count += 1

    @property
    def size(self) -> int:
        """Number of diagnosable faults in the dictionary."""
        return self._built_count

    def ambiguity_histogram(self) -> Dict[int, int]:
        """How many signature groups have each ambiguity size."""
        hist: Dict[int, int] = {}
        for group in self._table.values():
            hist[len(group)] = hist.get(len(group), 0) + 1
        return hist

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def diagnose(self, signatures: Sequence[int]) -> DiagnosisResult:
        """Look up an observed signature tuple."""
        key = tuple(int(s) for s in signatures)
        if len(key) != len(self.sessions):
            raise SimulationError(
                f"expected {len(self.sessions)} signatures, got {len(key)}"
            )
        return DiagnosisResult(
            candidates=list(self._table.get(key, [])),
            sessions_used=len(self.sessions),
        )

    def diagnose_device(self, fault: DesignFault) -> DiagnosisResult:
        """Simulate a faulty device end to end and diagnose it."""
        return self.diagnose(self.signature_of(fault))
