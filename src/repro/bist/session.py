"""End-to-end BIST sessions: generator → filter → compactor.

:class:`BistSession` is the user-facing flow: wire a test generator to a
filter design, compute the golden signature, and grade either the fault
universe (fast cell-level engine) or an individual injected fault
(bit-true injection + signature comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import SimulationError
from ..faultsim.dictionary import DesignFault, FaultUniverse, build_fault_universe
from ..faultsim.engine import CoverageResult, run_fault_coverage
from ..faultsim.inject import to_injected_fault
from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from ..rtl.simulate import simulate
from ..telemetry import get_telemetry
from .misr import Misr, note_aliasing_event

__all__ = ["BistOutcome", "BistSession"]


@dataclass
class BistOutcome:
    """Result of screening one (possibly faulty) device."""

    signature: int
    golden_signature: int

    @property
    def passed(self) -> bool:
        return self.signature == self.golden_signature


@dataclass
class BistSession:
    """A configured self-test: one generator, one design, one compactor.

    ``misr_width`` defaults to the design output width.  The session is
    deterministic: the generator is reset at the start of every run.
    """

    design: FilterDesign
    generator: TestGenerator
    n_vectors: int
    misr_width: Optional[int] = None
    _misr: Misr = field(init=False, repr=False)
    _golden: Optional[int] = field(default=None, init=False, repr=False)
    _golden_response: Optional[np.ndarray] = field(default=None, init=False,
                                                   repr=False)
    _universe: Optional[FaultUniverse] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_vectors <= 0:
            raise SimulationError("n_vectors must be positive")
        width = self.misr_width or self.design.output_fmt.width
        self._misr = Misr(width)

    # ------------------------------------------------------------------
    # Stimulus and signatures
    # ------------------------------------------------------------------
    def stimulus(self) -> np.ndarray:
        """The raw input sequence of one session (width-matched)."""
        raw = self.generator.sequence(self.n_vectors)
        return match_width(raw, self.generator.width,
                           self.design.input_fmt.width)

    def golden_signature(self) -> int:
        """Fault-free signature (cached)."""
        if self._golden is None:
            response = simulate(self.design.graph, self.stimulus())
            self._golden_response = response.raw(self.design.graph.output_id)
            self._golden = self._misr.signature(self._golden_response)
        return self._golden

    def screen_fault(self, fault: DesignFault) -> BistOutcome:
        """Run the full session against one injected fault.

        Bit-true: the faulty cell is injected into the datapath and the
        MISR signature compared against gold — including any aliasing a
        real MISR could introduce.  Sessions that alias (response
        differs, signature matches) are counted on the
        ``bist.misr.aliasing_events`` telemetry counter.
        """
        tel = get_telemetry()
        with tel.span("bist.screen_fault", fault=fault.label):
            response = simulate(self.design.graph, self.stimulus(),
                                fault=to_injected_fault(fault))
            raw_out = response.raw(self.design.graph.output_id)
            sig = self._misr.signature(raw_out)
            golden_sig = self.golden_signature()
        if tel.enabled:
            tel.counter("bist.faults_screened").add(1)
            if sig == golden_sig and np.any(raw_out != self._golden_response):
                note_aliasing_event("misr")
        return BistOutcome(signature=sig, golden_signature=golden_sig)

    # ------------------------------------------------------------------
    # Universe-level grading
    # ------------------------------------------------------------------
    @property
    def universe(self) -> FaultUniverse:
        if self._universe is None:
            self._universe = build_fault_universe(self.design.graph,
                                                  name=self.design.name)
        return self._universe

    def grade(self) -> CoverageResult:
        """Fast coverage grading of the whole fault universe."""
        return run_fault_coverage(self.design, self.generator, self.n_vectors,
                                  universe=self.universe)
