"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``     Table 1-style statistics for the reference designs.
``grade``     Run a BIST session and report coverage and missed faults.
``rank``      Rank generators against a design, propose a scheme.
``recommend`` Recommend a generator for a design: analytic predictor
              ranking with bounded gate-level confirmation of the
              top-k candidates.
``spectrum``  Print a generator's power spectrum.
``table N``   Regenerate paper Table N.
``figure N``  Regenerate paper Figure N.
``profile``   Profile a BIST session: span tree, rates, test-zone hits;
              ``--jobs`` merges worker-process spans into one trace and
              ``--export-trace`` writes Chrome-trace JSON.
``sweep``     Parallel design x generator coverage grid (cache-backed).
``bench``     Serial-vs-parallel throughput benchmark -> JSON report;
              ``--gates`` benches the three gate engine tiers, a bare
              ``--schedule`` benches predictor-guided batch ordering,
              and ``--report`` adds a self-contained HTML run report.
``serve``     Run the async BIST evaluation service (HTTP + JSON).
``cluster``   Shard exact gate-level fault grading across a fleet of
              ``serve`` endpoints and merge the verdicts, coverage
              checkpoints and MISR signature back bit-identically;
              ``--verify`` re-grades single-node and asserts identity.
``loadtest``  Replay job traffic against a service endpoint; report
              latency percentiles, throughput and 429 rates, with
              ``--check`` thresholds for CI.
``artifacts`` ``serve`` a content-addressed artifact store over HTTP
              so a worker fleet shares one cache
              (``--cache-dir http://host:port`` on the workers).
``report``    Markdown paper report, or ``--trace`` for an HTML run
              report rendered from a JSONL telemetry trace.
``runs``      Query the append-only run ledger: ``list``, ``show``,
              ``compare``, ``trend`` (history-aware regression gate),
              ``validate`` (ledger integrity, or ``--schema FILE...``
              for report files), and ``watch`` (live progress of a
              service job over the SSE stream).
``top``       Live fleet dashboard over ``/v1/fleet``: per-worker
              throughput, shard progress, liveness and firing alerts
              (``--once`` prints a single frame for scripts).
``alerts``    ``check`` evaluates an SLO alert-rule file against a
              live fleet endpoint, a saved fleet snapshot or a saved
              loadtest report; nonzero exit on any breach.

Global flags: ``--version``, ``-v/--verbose`` (repeatable),
``--profile`` (log a telemetry summary for any command) and
``--trace-out PATH`` (stream telemetry events as JSON Lines).
``sweep``/``bench``/``profile``/``serve`` additionally take
``--ledger-dir PATH`` / ``--no-ledger`` controlling where (whether)
the run is recorded in the run ledger.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

from .analysis.spectrum import generator_spectrum, power_db
from .bist.selection import propose_scheme, rank_generators
from .errors import ReproError
from .experiments import (
    ExperimentContext,
    figure1, figure2, figure3, figure4, figure5, figure6, figure7, figure8,
    figure9, figure10, figure11, figure12, figure13,
    table1, table2, table3, table4, table5, table6,
)
from .experiments.render import series_block
from .faultsim import run_fault_coverage
from .faultsim.report import coverage_summary, missed_fault_map
from .filters import design_statistics
from .ledger import (
    RUN_KINDS,
    RunLedger,
    build_record,
    current_git_sha,
    metric_value,
    summarize_telemetry,
    trend_check,
)
from .resolve import (
    GENERATOR_CHOICES,
    make_generator,
    resolve_design,
    resolve_generator,
    resolve_names,
)
from .telemetry import (
    JsonlSink,
    LoggingSummarySink,
    Telemetry,
    ZoneTracer,
    format_span_tree,
    get_telemetry,
    set_telemetry,
)

__all__ = ["main", "GENERATOR_CHOICES", "make_generator"]

logger = logging.getLogger("repro.cli")

_TABLES = {1: table1, 2: table2, 3: table3, 4: table4, 5: table5, 6: table6}
_FIGURES = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5,
            6: figure6, 7: figure7, 8: figure8, 9: figure9, 10: figure10,
            11: figure11, 12: figure12, 13: figure13}

def package_version() -> str:
    """The installed package version (falls back to ``repro.__version__``)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed; running from a source tree
        from . import __version__

        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frequency-domain compatible BIST for digital filters "
                    "(Goodby & Orailoglu, DAC 1997 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v for INFO logging, -vv for DEBUG")
    parser.add_argument("--profile", action="store_true",
                        help="collect telemetry and log a span/metric "
                             "summary after the command")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="stream telemetry events to PATH as JSON Lines")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="design statistics (Table 1)")

    # Design/generator names are validated by the shared resolver at
    # dispatch (one-line error + exit 2), not by argparse choices=, so
    # aliases like "lfsr-1" work and the error message is uniform.
    grade = sub.add_parser("grade", help="run a BIST session")
    grade.add_argument("--design", default="LP", metavar="{LP,BP,HP}")
    grade.add_argument("--generator", default="lfsr1",
                       metavar="{" + ",".join(GENERATOR_CHOICES) + "}")
    grade.add_argument("--vectors", type=int, default=4096)
    grade.add_argument("--width", type=int, default=12)
    grade.add_argument("--map", action="store_true",
                       help="also print where the missed faults live")
    grade.add_argument("--report", action="store_true",
                       help="also print the per-tap testability report")

    rank = sub.add_parser("rank", help="rank generators against a design")
    rank.add_argument("--design", default="LP", metavar="{LP,BP,HP}")
    rank.add_argument("--vectors", type=int, default=4096)

    spectrum = sub.add_parser("spectrum", help="print a generator spectrum")
    spectrum.add_argument("--generator", default="lfsr1",
                          metavar="{" + ",".join(GENERATOR_CHOICES) + "}")
    spectrum.add_argument("--width", type=int, default=12)
    spectrum.add_argument("--points", type=int, default=24)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=sorted(_TABLES))

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))

    report = sub.add_parser(
        "report",
        help="write the full markdown report, or an HTML run report "
             "from a telemetry trace (--trace)")
    report.add_argument("--out", default="reproduction_report.md")
    report.add_argument("--only", choices=("tables", "figures"),
                        help="restrict to tables or figures")
    report.add_argument("--trace", default=None, metavar="PATH",
                        help="render an HTML run report (span waterfall, "
                             "stage timings, cache hit rates) from a JSONL "
                             "telemetry trace instead; --out defaults to "
                             "the trace name with an .html suffix")

    export = sub.add_parser(
        "export", help="export a design (JSON / structural Verilog)")
    export.add_argument("--design", choices=("LP", "BP", "HP"), default="LP")
    export.add_argument("--format", choices=("json", "verilog"),
                        default="json")
    export.add_argument("--out", required=True)

    def add_ledger_flags(p):
        p.add_argument("--ledger-dir", default=None, metavar="PATH",
                       help="run-ledger directory (default: "
                            "$REPRO_LEDGER_DIR or "
                            "~/.local/state/repro/ledger)")
        p.add_argument("--no-ledger", action="store_true",
                       help="do not record this run in the run ledger")

    profile = sub.add_parser(
        "profile",
        help="profile a BIST session: span tree, vectors/sec, zone hits")
    add_ledger_flags(profile)
    profile.add_argument("design", metavar="design")
    profile.add_argument("generator", metavar="generator")
    profile.add_argument("--vectors", type=int, default=4096)
    profile.add_argument("--width", type=int, default=12)
    profile.add_argument("--beta", type=float, default=0.25,
                         help="test-zone width parameter (Figure 1)")
    profile.add_argument("--exact", type=int, default=0, metavar="N",
                         help="also grade the first N gate-level faults "
                              "with the exact cone engine and report its "
                              "cone/drop counters (0 = skip)")
    profile.add_argument("--jobs", type=int, default=1,
                         help="fan --exact grading across N worker "
                              "processes; their spans merge into the "
                              "profile's trace (default 1 = in-process)")
    profile.add_argument("--engine", default=None,
                         metavar="{event,word,reference}",
                         help="cone evaluator tier for --exact grading "
                              "(default: the library default; every "
                              "tier is bit-identical)")
    profile.add_argument("--export-trace", default=None, metavar="PATH",
                         help="also write the session as a Chrome-trace "
                              "JSON file (chrome://tracing, Perfetto)")

    def add_grid_flags(p, default_generators: str, default_vectors: int):
        p.add_argument("--designs", default="LP,BP,HP",
                       help="comma-separated subset of LP,BP,HP")
        p.add_argument("--generators", default=default_generators,
                       help="comma-separated generator keys "
                            "(LFSR-1, LFSR-2, LFSR-D, LFSR-M, Ramp, Mixed)")
        p.add_argument("--vectors", type=int, default=default_vectors)
        p.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = auto: $REPRO_JOBS or "
                            "CPU count)")
        p.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="artifact cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk artifact cache")
        add_ledger_flags(p)

    sweep = sub.add_parser(
        "sweep",
        help="grade a design x generator grid across worker processes")
    add_grid_flags(sweep, "LFSR-1,LFSR-D,LFSR-M,Ramp", 4096)
    sweep.add_argument("--schedule", default="cone",
                       choices=("cone", "predicted", "random"),
                       help="session order: 'predicted' runs the grid "
                            "lines the Eq. 1 analytic model rates best "
                            "first, 'random' is a seeded control "
                            "shuffle (default cone = product order)")

    bench = sub.add_parser(
        "bench",
        help="time serial vs parallel grid grading; write a JSON report")
    add_grid_flags(bench, "LFSR-1,LFSR-D", 2048)
    bench.add_argument("--out", default="BENCH_parallel.json",
                       help="machine-readable benchmark report path")
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero if parallel throughput falls "
                            "below --threshold x serial, or results differ")
    bench.add_argument("--threshold", type=float, default=1.0,
                       help="minimum acceptable parallel/serial throughput "
                            "ratio for --check (default 1.0)")
    bench.add_argument("--now", default=None, metavar="WHEN",
                       help="timestamp recorded as created_unix: a unix "
                            "float or ISO-8601 datetime (default: "
                            "$REPRO_BENCH_NOW, else the wall clock); "
                            "pin it for reproducible report diffs")
    bench.add_argument("--gates", action="store_true",
                       help="benchmark the gate-level engine tiers "
                            "(event, word, reference) against each "
                            "other instead of the sweep grid")
    bench.add_argument("--gates-design", default="LP",
                       metavar="{LP,BP,HP}",
                       help="design graded by --gates (default LP)")
    bench.add_argument("--gates-vectors", type=int, default=4096,
                       help="stimulus length for --gates (default 4096)")
    bench.add_argument("--gates-faults", type=int, default=0,
                       help="restrict --gates to the first N faults "
                            "(0 = the full fault universe)")
    bench.add_argument("--gates-threshold", type=float, default=6.0,
                       help="minimum event-engine/reference speedup for "
                            "--gates --check (default 6.0)")
    bench.add_argument("--gates-event-threshold", type=float, default=1.2,
                       help="minimum event-engine/word-engine speedup "
                            "for --gates --check (default 1.2)")
    bench.add_argument("--gates-out", default="BENCH_gatesim.json",
                       help="report path for --gates "
                            "(default BENCH_gatesim.json)")
    bench.add_argument("--schedule", nargs="?", const="bench",
                       choices=("cone", "predicted", "random", "bench"),
                       default=None,
                       help="bare --schedule runs the predictor-guided "
                            "scheduling benchmark (predicted vs cone vs "
                            "random batch order + predicted-vs-actual "
                            "rank correlation); --schedule MODE with "
                            "--gates picks the batch order for the "
                            "optimized engine instead")
    bench.add_argument("--schedule-design", default="LP",
                       metavar="{LP,BP,HP}",
                       help="design graded by --schedule (default LP)")
    bench.add_argument("--schedule-generator", default="lfsr1",
                       metavar="{" + ",".join(GENERATOR_CHOICES) + "}",
                       help="generator graded by --schedule "
                            "(default lfsr1)")
    bench.add_argument("--schedule-vectors", type=int, default=1024,
                       help="stimulus length for --schedule "
                            "(default 1024)")
    bench.add_argument("--schedule-faults", type=int, default=0,
                       help="evenly subsample the fault universe to N "
                            "faults for --schedule (0 = full universe)")
    bench.add_argument("--schedule-chunk", type=int, default=64,
                       help="time-chunk length for --schedule; detection "
                            "times resolve to chunk ends, so keep it "
                            "fine (default 64)")
    bench.add_argument("--schedule-bins", type=int, default=1024,
                       help="amplitude-grid bins for the analytic "
                            "predictor (default 1024)")
    bench.add_argument("--schedule-seed", type=int, default=0x5EED,
                       help="seed of the random control ordering")
    bench.add_argument("--schedule-corr-threshold", type=float,
                       default=0.8,
                       help="minimum predicted-vs-actual Spearman rank "
                            "correlation for --schedule --check "
                            "(default 0.8)")
    bench.add_argument("--schedule-out", default="BENCH_schedule.json",
                       help="report path for --schedule "
                            "(default BENCH_schedule.json)")
    bench.add_argument("--report", default=None, metavar="PATH",
                       help="also write a self-contained HTML run report "
                            "(span waterfall, stage timings, cache hit "
                            "rates) for the benchmark session")

    recommend = sub.add_parser(
        "recommend",
        help="recommend a test generator for a design: analytic "
             "predictor ranking, gate-level confirmation of the top-k")
    recommend.add_argument("--design", default="LP", metavar="{LP,BP,HP}")
    recommend.add_argument("--vectors", type=int, default=4096,
                           help="session length the analytic ranking "
                                "assumes (default 4096)")
    recommend.add_argument("--candidates", default=None,
                           help="comma-separated generator subset "
                                "(default: the full paper menagerie)")
    recommend.add_argument("--top-k", type=int, default=2,
                           help="candidates confirmed at gate level "
                                "(0 = analytic ranking only)")
    recommend.add_argument("--confirm-vectors", type=int, default=512,
                           help="stimulus length of the confirmation "
                                "grade (0 skips confirmation)")
    recommend.add_argument("--confirm-faults", type=int, default=2048,
                           help="gate-level fault budget of the "
                                "confirmation grade (0 skips it)")
    recommend.add_argument("--bins", type=int, default=512,
                           help="amplitude-grid bins for the analytic "
                                "predictor (default 512)")
    recommend.add_argument("--json", action="store_true",
                           help="print the full result as JSON")
    recommend.add_argument("--cache-dir", default=None, metavar="PATH",
                           help="artifact cache directory (default: "
                                "$REPRO_CACHE_DIR or ~/.cache/repro)")
    recommend.add_argument("--no-cache", action="store_true",
                           help="disable the on-disk artifact cache")

    serve = sub.add_parser(
        "serve",
        help="run the async BIST evaluation service (HTTP + JSON)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8337,
                       help="listen port (0 = pick an ephemeral port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="async worker tasks draining the queue")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max queued jobs before 429 backpressure")
    serve.add_argument("--batch-max", type=int, default=8,
                       help="max same-kind jobs fused into one batch")
    serve.add_argument("--result-ttl", type=float, default=600.0,
                       help="seconds finished jobs stay pollable")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client submissions/sec (0 = unlimited)")
    serve.add_argument("--burst", type=float, default=0.0,
                       help="per-client burst size (0 = 2x --rate)")
    serve.add_argument("--drain-deadline", type=float, default=20.0,
                       help="seconds to finish in-flight jobs on shutdown")
    serve.add_argument("--grid-jobs", type=int, default=None,
                       help="process-pool width for batched grade jobs")
    serve.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="artifact cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk artifact cache")
    serve.add_argument("--access-log", default=None, metavar="PATH",
                       help="append per-request JSON Lines records to PATH")
    serve.add_argument("--events-keepalive", type=float, default=None,
                       help="seconds between SSE keepalive comments on "
                            "idle /v1/events streams (default: "
                            "$REPRO_SSE_KEEPALIVE or 15)")
    serve.add_argument("--keepalive-secs", type=float, default=None,
                       dest="keepalive_secs",
                       help="alias for --events-keepalive")
    serve.add_argument("--heartbeat-interval", type=float, default=2.0,
                       help="seconds between fleet heartbeats "
                            "(0 = disable the health plane; default 2)")
    serve.add_argument("--heartbeat-to", default=None, metavar="URL",
                       help="also push each heartbeat to this upstream "
                            "serve endpoint, aggregating the fleet view "
                            "there")
    serve.add_argument("--alert-rules", default=None, metavar="PATH",
                       help="JSON alert-rule file (repro-alert-rules/1) "
                            "evaluated against the merged fleet metrics "
                            "on every heartbeat")
    serve.add_argument("--worker-id", default=None,
                       help="stable worker name in heartbeats and fleet "
                            "views (default host:port)")
    serve.add_argument("--trace-out", dest="serve_trace_out", default=None,
                       metavar="PATH",
                       help="stream the service's telemetry events "
                            "(request spans, job spans, metrics) to PATH "
                            "as JSON Lines")
    add_ledger_flags(serve)

    cluster = sub.add_parser(
        "cluster",
        help="shard exact gate-level grading across serve endpoints; "
             "merge verdicts, checkpoints and MISR signature")
    cluster.add_argument("endpoints", nargs="+", metavar="URL",
                         help="worker endpoints (repro serve instances)")
    cluster.add_argument("--design", default="LP", metavar="{LP,BP,HP}")
    cluster.add_argument("--generator", default="lfsr1",
                         metavar="{" + ",".join(GENERATOR_CHOICES) + "}")
    cluster.add_argument("--vectors", type=int, default=512)
    cluster.add_argument("--width", type=int, default=12)
    cluster.add_argument("--faults", type=int, default=0,
                         help="restrict to the first N enumerated faults "
                              "(0 = the full fault universe)")
    cluster.add_argument("--shard-faults", type=int, default=4096,
                         help="max faults per shard; whole cone batches "
                              "are never split (default 4096)")
    cluster.add_argument("--schedule", default="cone",
                         choices=("cone", "predicted", "random"),
                         help="batch ordering the shards are packed in "
                              "(default cone)")
    cluster.add_argument("--schedule-bins", type=int, default=256,
                         help="amplitude-grid bins for --schedule "
                              "predicted (default 256)")
    cluster.add_argument("--schedule-seed", type=int, default=0x5EED,
                         help="seed of --schedule random")
    cluster.add_argument("--engine", default="",
                         metavar="{event,word,reference}",
                         help="cone evaluator tier the shard workers "
                              "run (default: each worker's library "
                              "default; every tier merges "
                              "bit-identically)")
    cluster.add_argument("--chunk", type=int, default=0,
                         help="time-chunk length for detection times "
                              "(0 = engine default)")
    cluster.add_argument("--misr-width", type=int, default=16,
                         help="MISR signature compaction width "
                              "(default 16)")
    cluster.add_argument("--shard-timeout", type=float, default=600.0,
                         help="seconds before one shard attempt is "
                              "abandoned and re-dispatched (default 600)")
    cluster.add_argument("--max-retries", type=int, default=4,
                         help="attempts per shard before the sweep fails "
                              "(default 4)")
    cluster.add_argument("--straggler-factor", type=float, default=3.0,
                         help="speculate a shard once it runs this "
                              "multiple of the median shard time "
                              "(default 3.0)")
    cluster.add_argument("--straggler-min", type=float, default=60.0,
                         help="floor on the straggler deadline in "
                              "seconds (default 60)")
    cluster.add_argument("--poll", type=float, default=2.0,
                         help="long-poll interval against workers "
                              "(default 2s)")
    cluster.add_argument("--heartbeat-poll", type=float, default=0.0,
                         help="poll each endpoint's /v1/fleet every N "
                              "seconds; two consecutive failed polls "
                              "mark it dead and pause dispatch to it "
                              "(0 = off)")
    cluster.add_argument("--verify", action="store_true",
                         help="also grade single-node locally and fail "
                              "unless verdicts, checkpoints and MISR "
                              "signature are bit-identical")
    cluster.add_argument("--out", default=None, metavar="PATH",
                         help="write the cluster report as JSON")
    cluster.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="artifact cache directory or "
                              "http:// artifact-server URL used by the "
                              "local (planning/verify) side")
    cluster.add_argument("--no-cache", action="store_true",
                         help="disable the local artifact cache")
    add_ledger_flags(cluster)

    loadtest = sub.add_parser(
        "loadtest",
        help="replay job traffic against a service endpoint; report "
             "latency percentiles, throughput and 429 rates")
    loadtest.add_argument("--url", default="http://127.0.0.1:8337",
                          help="service base URL "
                               "(default http://127.0.0.1:8337)")
    loadtest.add_argument("--concurrency", type=int, default=4,
                          help="closed-loop client threads (default 4)")
    loadtest.add_argument("--duration", type=float, default=10.0,
                          help="wall-clock seconds to drive traffic "
                               "(default 10)")
    loadtest.add_argument("--kinds", default=None,
                          help="comma-separated job kinds to replay "
                               "(default: the full built-in mix)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="seed of the per-client size perturbation")
    loadtest.add_argument("--job-timeout", type=float, default=60.0,
                          help="per-job turnaround deadline (default 60s)")
    loadtest.add_argument("--check", action="store_true",
                          help="exit nonzero when a threshold below is "
                               "violated (or nothing completed)")
    loadtest.add_argument("--max-p99", type=float, default=None,
                          help="--check: max p99 turnaround seconds")
    loadtest.add_argument("--min-throughput", type=float, default=None,
                          help="--check: min completed jobs per second")
    loadtest.add_argument("--max-busy-rate", type=float, default=None,
                          help="--check: max fraction of 429-rejected "
                               "requests")
    loadtest.add_argument("--max-error-rate", type=float, default=None,
                          help="--check: max fraction of failed requests")
    loadtest.add_argument("--min-completed", type=int, default=1,
                          help="--check: min completed jobs (default 1)")
    loadtest.add_argument("--out", default=None, metavar="PATH",
                          help="write the loadtest report as JSON")
    add_ledger_flags(loadtest)

    artifacts = sub.add_parser(
        "artifacts",
        help="content-addressed artifact store over HTTP")
    art_sub = artifacts.add_subparsers(dest="artifacts_command",
                                       required=True)
    a_serve = art_sub.add_parser(
        "serve",
        help="serve an artifact cache directory to a worker fleet")
    a_serve.add_argument("--root", default=None, metavar="PATH",
                         help="store directory (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    a_serve.add_argument("--host", default="127.0.0.1")
    a_serve.add_argument("--port", type=int, default=8338,
                         help="listen port (0 = pick an ephemeral port; "
                              "default 8338)")
    a_serve.add_argument("--max-bytes", type=int, default=0,
                         help="server-side LRU size budget in bytes "
                              "(0 = unbounded)")

    runs = sub.add_parser(
        "runs",
        help="query the run ledger; watch live service jobs")
    runs.add_argument("--ledger-dir", default=None, metavar="PATH",
                      help="run-ledger directory (default: "
                           "$REPRO_LEDGER_DIR or "
                           "~/.local/state/repro/ledger)")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    r_list = runs_sub.add_parser("list", help="recent run records")
    r_list.add_argument("--kind", default=None, choices=RUN_KINDS)
    r_list.add_argument("--last", type=int, default=20,
                        help="show the newest N records (default 20)")

    r_show = runs_sub.add_parser("show", help="one record, pretty JSON")
    r_show.add_argument("run", help="record id (any unique prefix)")

    r_cmp = runs_sub.add_parser(
        "compare", help="numeric field-by-field diff of two records")
    r_cmp.add_argument("run_a", help="baseline record id prefix")
    r_cmp.add_argument("run_b", help="candidate record id prefix")

    r_trend = runs_sub.add_parser(
        "trend",
        help="gate the newest run against the median of its "
             "predecessors")
    r_trend.add_argument("--metric", default="faults_per_sec",
                         help="dotted metric path or bare bench/metrics "
                              "name (default faults_per_sec)")
    r_trend.add_argument("--kind", default="bench-gates",
                         choices=RUN_KINDS,
                         help="run kind the history is drawn from "
                              "(default bench-gates)")
    r_trend.add_argument("--last", type=int, default=5,
                         help="baseline window: median of up to N prior "
                              "runs (default 5)")
    r_trend.add_argument("--tolerance", type=float, default=0.2,
                         help="allowed fractional deviation from the "
                              "baseline median (default 0.2)")
    r_trend.add_argument("--direction", choices=("higher", "lower"),
                         default="higher",
                         help="which direction is better (default higher)")
    r_trend.add_argument("--check", action="store_true",
                         help="exit nonzero on regression")

    r_val = runs_sub.add_parser(
        "validate",
        help="schema-check and re-address every ledger record, or "
             "validate report files (--schema)")
    r_val.add_argument("--schema", nargs="+", default=None,
                       metavar="FILE",
                       help="instead of the ledger, validate these JSON "
                            "report files against their embedded schema "
                            "tags (bench/cluster/loadtest/fleet "
                            "reports)")

    r_watch = runs_sub.add_parser(
        "watch", help="render a service job's live progress")
    r_watch.add_argument("job", help="service job id")
    r_watch.add_argument("--url", default="http://127.0.0.1:8337",
                         help="service base URL "
                              "(default http://127.0.0.1:8337)")
    r_watch.add_argument("--interval", type=float, default=2.0,
                         help="poll interval when the event stream is "
                              "unavailable (default 2s)")
    r_watch.add_argument("--timeout", type=float, default=0.0,
                         help="overall deadline in seconds: exit "
                              "nonzero if the job is not terminal by "
                              "then, even while the stream stays alive "
                              "(0 = wait forever)")

    top = sub.add_parser(
        "top",
        help="live fleet dashboard: per-worker throughput, progress, "
             "liveness and firing alerts")
    top.add_argument("--url", default="http://127.0.0.1:8337",
                     help="service base URL "
                          "(default http://127.0.0.1:8337)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds (default 2)")
    top.add_argument("--duration", type=float, default=0.0,
                     help="stop after N seconds (0 = until Ctrl-C)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (for scripts/CI)")

    alerts = sub.add_parser(
        "alerts",
        help="evaluate SLO alert rules against fleet metrics")
    alerts_sub = alerts.add_subparsers(dest="alerts_command",
                                       required=True)
    a_check = alerts_sub.add_parser(
        "check",
        help="exit nonzero when any rule in a rule file is breached")
    a_check.add_argument("--rules", required=True, metavar="PATH",
                         help="JSON alert-rule file "
                              "(repro-alert-rules/1)")
    source = a_check.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", default=None,
                        help="evaluate against a live /v1/fleet "
                             "endpoint")
    source.add_argument("--snapshot", default=None, metavar="PATH",
                        help="evaluate against a saved fleet snapshot "
                             "JSON file")
    source.add_argument("--loadtest", default=None, metavar="PATH",
                        help="evaluate against a saved loadtest report "
                             "(loadtest.* metric namespace)")
    add_ledger_flags(a_check)
    return parser


def _configure_logging(verbosity: int, force_info: bool = False) -> None:
    """Root handler to stderr; ``repro`` logger level from ``-v`` count."""
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    if force_info and level > logging.INFO:
        level = logging.INFO
    logging.basicConfig(stream=sys.stderr,
                        format="%(levelname)s %(name)s: %(message)s")
    # Handlers live on the root; level control lives on the package
    # logger, so library INFO/DEBUG records propagate when requested.
    logging.getLogger("repro").setLevel(level)


def _gate_engine_name(engine) -> str:
    """Canonical gate-engine name for reports and ledger records."""
    from .gates import resolve_engine

    return resolve_engine(engine)


def _cmd_profile(args, ctx: ExperimentContext, tel: Telemetry) -> int:
    """The ``profile`` command: one instrumented coverage session."""
    name = resolve_design(args.design)
    with tel.span("profile.setup", design=name):
        design = ctx.designs[name]
        universe = ctx.universe(name)
    gen = make_generator(resolve_generator(args.generator),
                         args.width, args.vectors)
    tracer = ZoneTracer.for_design(design, beta=args.beta)
    result = run_fault_coverage(design, gen, args.vectors, universe=universe,
                                zone_tracer=tracer)
    tracer.publish(tel)

    if args.exact:
        from .gates import elaborate, enumerate_cell_faults, gate_level_missed

        with tel.span("profile.exact", faults=args.exact, jobs=args.jobs):
            nl = elaborate(design.graph)
            faults = enumerate_cell_faults(design.graph, nl)[:args.exact]
            if args.jobs and args.jobs != 1:
                from .parallel.gatework import gate_level_missed_parallel

                missed = gate_level_missed_parallel(
                    nl, gen.sequence(args.vectors), faults, jobs=args.jobs,
                    engine=args.engine)
            else:
                missed = gate_level_missed(nl, gen.sequence(args.vectors),
                                           faults, engine=args.engine)

    print(coverage_summary(result))
    print()
    print("span tree:")
    print(format_span_tree(tel.roots))
    vps = tel.gauge("faultsim.vectors_per_sec").value
    if vps:
        print(f"\nthroughput: {vps:,.0f} vectors/sec "
              f"({vps * universe.fault_count:,.0f} fault-vectors/sec)")
    if args.exact:
        print(f"\nexact gate-level grading: {len(faults)} faults, "
              f"{len(missed)} missed")
        for key in _GATE_COUNTERS:
            print(f"  {key:24s} {tel.counter(key).value:>12,}")
        fps = tel.gauge("gates.faults_per_sec").value
        if fps:
            print(f"  {'gates.faults_per_sec':24s} {fps:>12,.0f}")
    print()
    print(tracer.table())
    if args.export_trace:
        from .telemetry import collector_payload, write_chrome_trace

        payload = collector_payload(tel)
        events = list(payload["spans"]) + list(payload["metrics"])
        write_chrome_trace(args.export_trace, events, trace_id=tel.trace_id)
        print(f"\nwrote Chrome trace to {args.export_trace} "
              f"(load in chrome://tracing or ui.perfetto.dev)")

    import time

    # Coverage-over-test-length checkpoints (the paper's own quality
    # axis) ride along in the run record, downsampled to ~16 points.
    pts, pct = result.coverage_percent_curve()
    step = max(1, len(pts) // 16)
    curve = [(float(p), float(c) / 100.0)
             for p, c in zip(pts[::step], pct[::step])]
    if len(pts) and (not curve or curve[-1][0] != float(pts[-1])):
        curve.append((float(pts[-1]), float(pct[-1]) / 100.0))
    _ledger_append(args, build_record(
        "profile",
        config={"design": name, "generator": gen.name,
                "vectors": args.vectors, "width": args.width,
                "beta": args.beta, "exact": args.exact, "jobs": args.jobs,
                "engine": _gate_engine_name(args.engine)},
        created_unix=time.time(),
        metrics=summarize_telemetry(tel) or None,
        coverage_curve=curve,
        git_sha=current_git_sha(),
        trace_id=tel.trace_id,
        extra={"coverage": float(result.coverage()),
               "missed": result.missed()}))
    return 0


def _make_cache(args):
    """The artifact cache selected by --cache-dir / --no-cache."""
    if args.no_cache:
        return None
    from .cache import ArtifactCache

    return ArtifactCache(args.cache_dir)


def _parse_grid(args):
    """Validated (designs, generator keys) lists for sweep/bench."""
    from .resolve import resolve_generator_key

    designs = resolve_names(args.designs, resolve_design)
    gens = resolve_names(args.generators, resolve_generator_key)
    if not designs or not gens:
        raise ReproError("sweep grid is empty")
    return designs, gens


def _cache_summary(cache) -> str:
    if cache is None:
        return "cache: disabled"
    s = cache.stats
    return (f"cache: {s.hits} hits / {s.misses} misses / {s.stores} stores "
            f"({cache.root})")


def _ledger_append(args, record) -> None:
    """Record a run in the ledger selected by --ledger-dir/--no-ledger.

    Best-effort: an unwritable ledger degrades to a warning, never a
    failed run — the measurement already happened.
    """
    if getattr(args, "no_ledger", False):
        return
    try:
        ledger = RunLedger(getattr(args, "ledger_dir", None))
        rid = ledger.append(record)
        logger.info("run %s recorded in %s", rid[:12], ledger.path)
    except Exception as exc:
        logger.warning("run-ledger append failed: %s", exc)


def _cmd_sweep(args) -> int:
    import time

    from .parallel import resolve_jobs
    from .parallel.sweep import SweepTask, run_sweep

    designs, gens = _parse_grid(args)  # fail fast on bad names
    cache = _make_cache(args)
    ctx = ExperimentContext(cache=cache)
    jobs = resolve_jobs(args.jobs)
    tasks = [SweepTask(design=d, generator=g, n_vectors=args.vectors,
                       width=ctx.config.generator_width)
             for d in designs for g in gens]
    if args.schedule != "cone":
        from .schedule import order_sweep_tasks

        tasks = order_sweep_tasks(ctx.designs, tasks, args.schedule)
    t0 = time.perf_counter()
    results = run_sweep(ctx, tasks, jobs=jobs)
    duration = time.perf_counter() - t0
    for task, result in zip(tasks, results):
        print(f"{task.design:3s} {result.generator_name:14s} "
              f"{args.vectors:6d} vectors  "
              f"{100 * result.coverage():6.2f}%  "
              f"{result.missed():5d} missed")
    print(f"jobs={jobs}  schedule={args.schedule}  "
          f"{_cache_summary(cache)}")
    _ledger_append(args, build_record(
        "sweep",
        config={"designs": designs, "generators": gens,
                "vectors": args.vectors, "jobs": jobs,
                "cache": cache is not None,
                "schedule": args.schedule},
        created_unix=time.time(),
        metrics=summarize_telemetry() or None,
        git_sha=current_git_sha(),
        duration_seconds=duration,
        extra={"results": [
            {"design": t.design, "generator": t.generator,
             "coverage": float(r.coverage()), "missed": r.missed()}
            for t, r in zip(tasks, results)]}))
    return 0


def _bench_now(args) -> float:
    """The timestamp recorded in the bench report.

    ``--now`` (or ``$REPRO_BENCH_NOW``) pins it — as a unix float or an
    ISO-8601 datetime — so re-runs produce byte-comparable reports.
    """
    import os
    import time as _time

    raw = args.now if args.now is not None else os.environ.get(
        "REPRO_BENCH_NOW")
    if raw is None:
        return _time.time()
    try:
        return float(raw)
    except ValueError:
        pass
    from datetime import datetime

    try:
        return datetime.fromisoformat(raw).timestamp()
    except ValueError:
        raise ReproError(
            f"--now must be a unix timestamp or ISO-8601 datetime, "
            f"got {raw!r}") from None


#: Counters the gate-sim benchmark and ``profile --exact`` report.
#: The last three are event-engine telemetry: frontier rows touched by
#: sparse sweeps, fault-words proven golden and skipped whole, and
#: single-fanout levels absorbed into LUT super-gates at fuse time.
_GATE_COUNTERS = (
    "gates.fault_batches",
    "gates.faults_graded",
    "gates.cone_nets",
    "gates.chunks_skipped",
    "gates.faults_dropped",
    "gates.lane_vectors",
    "gates.frontier_nets",
    "gates.words_skipped",
    "gates.lut_fused_levels",
)


def _cmd_bench_gates(args) -> int:
    """``bench --gates``: the three engine tiers on one fault universe.

    Grades the same universe with the event-driven engine, the
    word-widened engine and the retained pre-optimization reference,
    asserts all missed-fault lists are identical, and records
    per-engine rates with a compile/golden/grade phase split in a
    ``repro-bench-gatesim/2`` report.  ``--check`` gates on
    ``--gates-threshold`` (event vs reference) and
    ``--gates-event-threshold`` (event vs word).
    """
    import json
    import time

    from .gates import (compiled_program, elaborate, enumerate_cell_faults,
                        fused_program, gate_level_missed)
    from .gates.compiled import golden_net_waves
    from .gates.gatesim import pack_input_bits
    from .generators import Type1Lfsr, match_width

    name = resolve_design(args.gates_design)
    ctx = ExperimentContext()
    design = ctx.designs[name]
    nl = elaborate(design.graph)
    faults = enumerate_cell_faults(design.graph, nl)
    if args.gates_faults:
        faults = faults[:args.gates_faults]
    width = ctx.config.generator_width
    raw = match_width(Type1Lfsr(width).sequence(args.gates_vectors),
                      width, width)

    # --schedule MODE reorders the cone engines' batches; verdicts
    # scatter back by index so the identical-across-engines assertion
    # still holds for every mode.
    schedule_mode = args.schedule or "cone"
    scheduler = None
    if schedule_mode != "cone":
        from .schedule import FaultPredictor, make_scheduler

        predictor = (FaultPredictor(design, "lfsr1",
                                    bins=args.schedule_bins)
                     if schedule_mode == "predicted" else None)
        scheduler = make_scheduler(schedule_mode, predictor=predictor,
                                   seed=args.schedule_seed)

    def fault_key(f):
        return (f.node_id, f.bit, f.cell_fault)

    outer = get_telemetry()
    engines = {}
    missed_by_engine = {}
    event_counters = {}
    for eng in ("event", "word", "reference"):
        # A fresh netlist per engine defeats the per-object program
        # memo, so each tier's compile phase is measured cold.
        nl_e = elaborate(design.graph)
        tel = Telemetry()
        previous = set_telemetry(tel)
        try:
            if eng == "reference":
                # The reference engine predates the pipeline split: it
                # simulates golden and grades in one pass, so the whole
                # cost lands in the grade phase.
                compile_s = golden_s = 0.0
                t0 = time.perf_counter()
                missed = gate_level_missed(nl_e, raw, faults, engine=eng)
                grade_s = time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                prog = compiled_program(nl_e)
                if eng == "event":
                    fused_program(prog)  # memoized; EventCones reuse it
                compile_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                waves = golden_net_waves(
                    prog, pack_input_bits(raw, len(nl_e.input_bits)))
                golden_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                missed = gate_level_missed(
                    nl_e, raw, faults, scheduler=scheduler, engine=eng,
                    program=prog, net_waves=waves)
                grade_s = time.perf_counter() - t0
        finally:
            set_telemetry(previous)
        if eng == "event":
            event_counters = {key: tel.counter(key).value
                              for key in _GATE_COUNTERS}
        if outer.enabled:
            # Fold each isolated run's spans and counters into the
            # session collector so --profile / --report sees them.
            from .telemetry import collector_payload

            outer.absorb(collector_payload(tel))
        total_s = compile_s + golden_s + grade_s
        missed_by_engine[eng] = [fault_key(f) for f in missed]
        doc = {
            "seconds": total_s,
            "faults_per_sec": len(faults) / total_s if total_s else 0.0,
            "grade_faults_per_sec": (len(faults) / grade_s
                                     if grade_s else 0.0),
            "phases": {
                "compile_seconds": compile_s,
                "golden_seconds": golden_s,
                "grade_seconds": grade_s,
            },
        }
        if eng == "event":
            doc["counters"] = event_counters
        engines[eng] = doc

    identical = (missed_by_engine["event"] == missed_by_engine["word"]
                 == missed_by_engine["reference"])

    def ratio(num: str, den: str) -> float:
        d = engines[num]["seconds"]
        return engines[den]["seconds"] / d if d else 0.0

    speedups = {
        "event_vs_reference": ratio("event", "reference"),
        "word_vs_reference": ratio("word", "reference"),
        "event_vs_word": ratio("event", "word"),
    }
    report = {
        "schema": "repro-bench-gatesim/2",
        "created_unix": _bench_now(args),
        "git_sha": current_git_sha(),
        "config": {
            "design": name,
            "vectors": args.gates_vectors,
            "faults": len(faults),
            "schedule": schedule_mode,
        },
        "engines": engines,
        "missed": len(missed_by_engine["event"]),
        "speedups": speedups,
        "identical": identical,
    }
    with open(args.gates_out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # Same provenance (schema, pinned timestamp, git sha) lands in the
    # run ledger, where `repro runs trend` reads the history.  The
    # headline faults_per_sec stays the optimized-engine rate (now the
    # event tier), so trend history spans the /1 -> /2 schema change.
    _ledger_append(args, build_record(
        "bench-gates",
        config=dict(report["config"], engine="event"),
        created_unix=report["created_unix"],
        bench={
            "faults_per_sec": engines["event"]["faults_per_sec"],
            "grade_faults_per_sec":
                engines["event"]["grade_faults_per_sec"],
            "word_faults_per_sec": engines["word"]["faults_per_sec"],
            "reference_faults_per_sec":
                engines["reference"]["faults_per_sec"],
            "optimized_seconds": engines["event"]["seconds"],
            "reference_seconds": engines["reference"]["seconds"],
            "speedup": speedups["event_vs_reference"],
            "event_vs_word": speedups["event_vs_word"],
        },
        metrics={k: float(v) for k, v in event_counters.items()},
        git_sha=report["git_sha"],
        duration_seconds=sum(e["seconds"] for e in engines.values()),
        extra={"identical": identical, "missed": report["missed"]}))

    print(f"gate-level universe: {name}, {len(faults)} faults, "
          f"{args.gates_vectors} vectors")
    for eng in ("event", "word", "reference"):
        doc = engines[eng]
        ph = doc["phases"]
        print(f"{eng:9s}: {doc['seconds']:8.2f}s  "
              f"{doc['faults_per_sec']:10,.0f} faults/s  "
              f"(compile {ph['compile_seconds']:.2f}s, golden "
              f"{ph['golden_seconds']:.2f}s, grade "
              f"{ph['grade_seconds']:.2f}s)  "
              f"missed {len(missed_by_engine[eng])}")
    print(f"speedups:  event/reference "
          f"{speedups['event_vs_reference']:.2f}x   event/word "
          f"{speedups['event_vs_word']:.2f}x   identical: {identical}   "
          f"wrote {args.gates_out}")

    if args.check:
        if not identical:
            print("bench check FAILED: engine verdicts differ",
                  file=sys.stderr)
            return 1
        if speedups["event_vs_reference"] < args.gates_threshold:
            print(f"bench check FAILED: event/reference speedup "
                  f"{speedups['event_vs_reference']:.2f} below threshold "
                  f"{args.gates_threshold:.2f}", file=sys.stderr)
            return 1
        if speedups["event_vs_word"] < args.gates_event_threshold:
            print(f"bench check FAILED: event/word speedup "
                  f"{speedups['event_vs_word']:.2f} below threshold "
                  f"{args.gates_event_threshold:.2f}", file=sys.stderr)
            return 1
        print(f"bench check passed: event/reference "
              f"{speedups['event_vs_reference']:.2f} >= "
              f"{args.gates_threshold:.2f}, event/word "
              f"{speedups['event_vs_word']:.2f} >= "
              f"{args.gates_event_threshold:.2f}")
    return 0


def _cmd_bench_schedule(args) -> int:
    """``bench --schedule``: predictor-guided vs cone vs random order.

    Grades one design's gate-level fault universe three times — once
    per batch-ordering policy — at the full stimulus length (no
    iterative deepening, so batch order is the *only* easy-first
    mechanism) and measures (a) how much grading work each policy needs
    to reach 90% of final detections, and (b) the Spearman rank
    correlation between the analytic predictor's detection times and
    the gate engine's actual ones, aggregated per ripple-carry cell.
    Writes a ``repro-bench-schedule/1`` report; ``--check`` gates on
    verdict identity, the correlation threshold and predicted beating
    the random control on work-to-90%.
    """
    import json
    import time

    import numpy as np

    from .gates import elaborate, enumerate_cell_faults, gate_level_missed
    from .generators import match_width
    from .schedule import (FaultPredictor, make_scheduler,
                           spearman_rank_correlation, work_to_coverage)

    name = resolve_design(args.schedule_design)
    gen_kind = resolve_generator(args.schedule_generator)
    ctx = ExperimentContext()
    design = ctx.designs[name]
    nl = elaborate(design.graph)
    faults = enumerate_cell_faults(design.graph, nl)
    if args.schedule_faults and args.schedule_faults < len(faults):
        idx = np.unique(np.linspace(0, len(faults) - 1,
                                    args.schedule_faults).astype(int))
        faults = [faults[i] for i in idx]
    vectors = args.schedule_vectors
    gen = make_generator(gen_kind, design.input_fmt.width, vectors)
    raw = match_width(gen.sequence(vectors), gen.width,
                      design.input_fmt.width)

    t0 = time.perf_counter()
    predictor = FaultPredictor(design, gen_kind, bins=args.schedule_bins)
    times_pred = predictor.expected_times(faults)
    predictor_seconds = time.perf_counter() - t0

    tel = Telemetry()
    previous = set_telemetry(tel)
    arms = {}
    try:
        for mode in ("cone", "predicted", "random"):
            scheduler = None if mode == "cone" else make_scheduler(
                mode, predictor=predictor, seed=args.schedule_seed)
            # Actual detection times come from the cone arm; they are
            # schedule-independent, so one collection pass suffices.
            detect = (np.full(len(faults), -1, dtype=np.int64)
                      if mode == "cone" else None)
            checkpoints = []
            cum = {"work": 0, "dropped": 0}

            def on_batch(info, cum=cum, cp=checkpoints):
                cum["work"] += info["work"]
                cum["dropped"] += info["dropped"]
                cp.append((cum["work"], info["detected"]))

            t0 = time.perf_counter()
            missed = gate_level_missed(
                nl, raw, faults, chunk=args.schedule_chunk,
                deepening=False, scheduler=scheduler,
                on_batch=on_batch, detect_times=detect)
            arms[mode] = {
                "seconds": time.perf_counter() - t0,
                "missed": missed,
                "detect": detect,
                "checkpoints": checkpoints,
                "work_total": cum["work"],
                "dropped": cum["dropped"],
            }
    finally:
        set_telemetry(previous)
    outer = get_telemetry()
    if outer.enabled:
        from .telemetry import collector_payload

        outer.absorb(collector_payload(tel))

    def fault_key(f):
        return (f.node_id, f.bit, f.cell_fault)

    # Missed lists preserve the original fault order regardless of the
    # schedule (verdicts scatter back by index), so direct comparison
    # asserts bit-identical verdicts.
    missed_cone = [fault_key(f) for f in arms["cone"]["missed"]]
    identical = all(
        [fault_key(f) for f in arms[m]["missed"]] == missed_cone
        for m in ("predicted", "random"))
    detected = len(faults) - len(missed_cone)
    target = int(np.ceil(0.9 * detected))

    # Predicted-vs-actual rank correlation, censored at 2x the session
    # length (undetected / analytically-undetectable faults pin there)
    # and aggregated per (node, bit) cell: the predictor ranks fault
    # *sites*, and the scheduler moves batches, never single faults.
    censor = 2.0 * vectors
    detect = arms["cone"]["detect"]
    actual = np.where(detect < 0, censor, detect).astype(float)
    pred = np.minimum(np.where(np.isfinite(times_pred), times_pred,
                               censor), censor)
    cells = {}
    for i, f in enumerate(faults):
        cells.setdefault((f.node_id, f.bit), []).append(i)
    cell_pred = [float(np.mean(pred[ix])) for ix in cells.values()]
    cell_actual = [float(np.mean(actual[ix])) for ix in cells.values()]
    rank_corr = spearman_rank_correlation(cell_pred, cell_actual)
    rank_corr_fault = spearman_rank_correlation(pred, actual)

    orderings = {}
    for mode, arm in arms.items():
        w90 = work_to_coverage(arm["checkpoints"], target)
        orderings[mode] = {
            "seconds": arm["seconds"],
            "work_total": int(arm["work_total"]),
            "work_to_90": None if w90 is None else int(w90),
            "work_to_90_fraction":
                None if w90 is None or not arm["work_total"]
                else w90 / arm["work_total"],
            "faults_dropped": int(arm["dropped"]),
        }

    report = {
        "schema": "repro-bench-schedule/1",
        "created_unix": _bench_now(args),
        "git_sha": current_git_sha(),
        "config": {
            "design": name,
            "generator": gen_kind,
            "vectors": vectors,
            "faults": len(faults),
            "chunk": args.schedule_chunk,
            "bins": args.schedule_bins,
            "seed": args.schedule_seed,
        },
        "predictor": {
            "seconds": predictor_seconds,
            "unpredictable_faults":
                int(np.count_nonzero(~np.isfinite(times_pred))),
        },
        "rank_correlation": rank_corr,
        "rank_correlation_per_fault": rank_corr_fault,
        "cells": len(cells),
        "detected": detected,
        "missed": len(missed_cone),
        "target_detected": target,
        "identical": identical,
        "orderings": orderings,
    }
    with open(args.schedule_out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    w90 = {m: orderings[m]["work_to_90"] for m in orderings}
    _ledger_append(args, build_record(
        "bench-schedule",
        config=report["config"],
        created_unix=report["created_unix"],
        bench={
            "rank_correlation": rank_corr,
            "work_to_90_cone": float(w90["cone"] or 0),
            "work_to_90_predicted": float(w90["predicted"] or 0),
            "work_to_90_random": float(w90["random"] or 0),
            "predicted_vs_random":
                (w90["random"] / w90["predicted"]
                 if w90["predicted"] and w90["random"] else 0.0),
        },
        git_sha=report["git_sha"],
        duration_seconds=predictor_seconds
        + sum(a["seconds"] for a in arms.values()),
        extra={"identical": identical, "missed": len(missed_cone)}))

    print(f"schedule universe: {name}/{gen_kind}, {len(faults)} faults, "
          f"{vectors} vectors (chunk {args.schedule_chunk}, no deepening)")
    print(f"predictor: {predictor_seconds:6.2f}s  "
          f"rank correlation {rank_corr:.4f} over {len(cells)} cells "
          f"({rank_corr_fault:.4f} per fault)")
    for mode in ("cone", "predicted", "random"):
        o = orderings[mode]
        frac = (f"{o['work_to_90_fraction']:.3f}"
                if o["work_to_90_fraction"] is not None else "n/a")
        print(f"{mode:9s} {o['seconds']:6.2f}s  "
              f"work-to-90% {o['work_to_90'] or 0:>12,} "
              f"({frac} of {o['work_total']:,})  "
              f"dropped {o['faults_dropped']:,}")
    print(f"identical: {identical}   wrote {args.schedule_out}")

    if args.check:
        failures = []
        if not identical:
            failures.append("scheduled verdicts differ from cone order")
        if rank_corr < args.schedule_corr_threshold:
            failures.append(
                f"rank correlation {rank_corr:.4f} below threshold "
                f"{args.schedule_corr_threshold:.2f}")
        if (w90["predicted"] is None or w90["random"] is None
                or w90["predicted"] >= w90["random"]):
            failures.append(
                f"predicted work-to-90% ({w90['predicted']}) does not "
                f"beat random ({w90['random']})")
        if failures:
            for failure in failures:
                print(f"bench check FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"bench check passed: rank correlation {rank_corr:.4f} "
              f">= {args.schedule_corr_threshold:.2f}, predicted "
              f"work-to-90% {w90['predicted']:,} < random "
              f"{w90['random']:,}")
    return 0


def _bench_target(args):
    """Which benchmark ``bench`` runs, from --gates / --schedule."""
    if args.schedule == "bench":
        if args.gates:
            raise ReproError(
                "--gates and the scheduling benchmark (bare --schedule) "
                "are mutually exclusive")
        return _cmd_bench_schedule
    if args.schedule is not None and not args.gates:
        raise ReproError(
            "--schedule MODE picks the batch order for --gates; use a "
            "bare --schedule to run the scheduling benchmark")
    return _cmd_bench_gates if args.gates else _cmd_bench_grid


def _cmd_bench(args) -> int:
    target = _bench_target(args)  # fail fast on conflicting flags
    if not args.report:
        return target(args)

    from .telemetry import InMemorySink, get_telemetry, write_run_report

    # --report needs the benchmark's own telemetry: ride along on an
    # already-active collector (--profile / --trace-out), else install
    # one for the duration of the run.
    current = get_telemetry()
    sink = InMemorySink()
    previous = None
    if isinstance(current, Telemetry):
        tel = current
        tel.sinks.append(sink)
    else:
        tel = Telemetry(sinks=[sink])
        previous = set_telemetry(tel)
    try:
        return target(args)
    finally:
        # Snapshot instruments into our private sink only — flushing the
        # shared collector here would duplicate snapshots in its sinks.
        for inst in tel.metrics().values():
            sink.on_event(inst.to_event())
        if previous is not None:
            set_telemetry(previous)
        else:
            tel.sinks.remove(sink)
        write_run_report(args.report, sink.events,
                         title="repro bench report")
        print(f"wrote bench report to {args.report}")


def _cmd_bench_grid(args) -> int:
    import json
    import time

    import numpy as np

    from .parallel import resolve_jobs
    from .parallel.sweep import SweepTask, run_sweep

    designs, gens = _parse_grid(args)  # fail fast on bad names
    cache = _make_cache(args)
    # coverage_cache off: timed sessions must grade, not load.
    ctx = ExperimentContext(cache=cache, coverage_cache=False)
    jobs = resolve_jobs(args.jobs)

    t0 = time.perf_counter()
    for d in designs:
        ctx.universe(d)
    setup_seconds = time.perf_counter() - t0

    tasks = [SweepTask(design=d, generator=g, n_vectors=args.vectors,
                       width=ctx.config.generator_width)
             for d in designs for g in gens]

    t0 = time.perf_counter()
    serial = run_sweep(ctx, tasks, jobs=1)
    serial_seconds = time.perf_counter() - t0

    ctx.reset_coverage()
    t0 = time.perf_counter()
    parallel = run_sweep(ctx, tasks, jobs=jobs)
    parallel_seconds = time.perf_counter() - t0

    identical = all(np.array_equal(s.detect_time, p.detect_time)
                    for s, p in zip(serial, parallel))
    total_vectors = sum(t.n_vectors for t in tasks)
    total_faults = sum(r.universe.fault_count for r in serial)

    def rates(seconds: float):
        return {
            "seconds": seconds,
            "vectors_per_sec": total_vectors / seconds if seconds else 0.0,
            "faults_per_sec": total_faults / seconds if seconds else 0.0,
            "sessions_per_sec": len(tasks) / seconds if seconds else 0.0,
        }

    report = {
        "schema": "repro-bench-parallel/1",
        "created_unix": _bench_now(args),
        "git_sha": current_git_sha(),
        "config": {
            "designs": designs,
            "generators": gens,
            "vectors": args.vectors,
            "jobs": jobs,
            "cache": cache is not None,
        },
        "grid": {
            "sessions": len(tasks),
            "total_vectors": total_vectors,
            "total_faults": total_faults,
        },
        "setup_seconds": setup_seconds,
        "serial": rates(serial_seconds),
        "parallel": dict(rates(parallel_seconds), jobs=jobs),
        "speedup": (serial_seconds / parallel_seconds
                    if parallel_seconds else 0.0),
        "identical": identical,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"grid: {len(tasks)} sessions "
          f"({len(designs)} designs x {len(gens)} generators, "
          f"{args.vectors} vectors)")
    print(f"serial:   {serial_seconds:8.2f}s  "
          f"{report['serial']['vectors_per_sec']:12,.0f} vectors/s  "
          f"{report['serial']['faults_per_sec']:12,.0f} faults/s")
    print(f"parallel: {parallel_seconds:8.2f}s  "
          f"{report['parallel']['vectors_per_sec']:12,.0f} vectors/s  "
          f"{report['parallel']['faults_per_sec']:12,.0f} faults/s  "
          f"(jobs={jobs})")
    print(f"speedup:  {report['speedup']:.2f}x   "
          f"identical: {identical}   wrote {args.out}")

    _ledger_append(args, build_record(
        "bench-parallel",
        config=report["config"],
        created_unix=report["created_unix"],
        bench={
            "faults_per_sec": report["parallel"]["faults_per_sec"],
            "vectors_per_sec": report["parallel"]["vectors_per_sec"],
            "serial_faults_per_sec": report["serial"]["faults_per_sec"],
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": report["speedup"],
        },
        git_sha=report["git_sha"],
        duration_seconds=setup_seconds + serial_seconds + parallel_seconds,
        extra={"identical": identical, "grid": report["grid"]}))

    if args.check:
        if not identical:
            print("bench check FAILED: parallel results differ from serial",
                  file=sys.stderr)
            return 1
        ratio = report["speedup"]
        if ratio < args.threshold:
            print(f"bench check FAILED: parallel/serial throughput ratio "
                  f"{ratio:.2f} below threshold {args.threshold:.2f}",
                  file=sys.stderr)
            return 1
        print(f"bench check passed: ratio {ratio:.2f} >= "
              f"{args.threshold:.2f}")
    return 0


def _cmd_recommend(args) -> int:
    """``recommend``: best generator for a design, predictor-first."""
    import json

    from .schedule import recommend_generator

    candidates = None
    if args.candidates:
        candidates = resolve_names(args.candidates, resolve_generator)
        if not candidates:
            raise ReproError("empty --candidates list")
    ctx = ExperimentContext(cache=_make_cache(args))
    out = recommend_generator(
        ctx, args.design, vectors=args.vectors, top_k=args.top_k,
        confirm_vectors=args.confirm_vectors,
        confirm_faults=args.confirm_faults, bins=args.bins,
        candidates=candidates)
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0
    print(f"recommendation for {out['design']} "
          f"({out['fault_count']} behavioral faults, "
          f"{out['vectors']}-vector sessions):")
    for c in out["candidates"]:
        marker = "*" if c["generator"] == out["best"] else " "
        print(f" {marker} {c['name']:14s} rank {c['analytic_rank']}  "
              f"predicted coverage {100 * c['predicted_coverage']:6.2f}%  "
              f"ratio {c['compatibility_ratio']:7.3f}  {c['rating']}")
    for c in out["confirmed"]:
        print(f"   confirmed {c['generator']:8s} "
              f"{100 * c['coverage']:6.2f}% of {c['faults']} gate-level "
              f"faults at {c['vectors']} vectors")
    print(f"best: {out['best']}")
    return 0


def _resolve_keepalive(args) -> float:
    """SSE keepalive: flag wins, then $REPRO_SSE_KEEPALIVE, then 15s."""
    for value in (args.keepalive_secs, args.events_keepalive):
        if value is not None:
            return value
    env = os.environ.get("REPRO_SSE_KEEPALIVE", "").strip()
    if env:
        try:
            return float(env)
        except ValueError:
            raise ReproError(
                f"REPRO_SSE_KEEPALIVE must be a number of seconds, "
                f"got {env!r}") from None
    return 15.0


def _cmd_serve(args) -> int:
    from .service import EvaluationService, ServiceConfig
    from .telemetry import RequestLogSink, get_telemetry

    config = ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, batch_max=args.batch_max,
        result_ttl=args.result_ttl, rate=args.rate, burst=args.burst,
        drain_deadline=args.drain_deadline, grid_jobs=args.grid_jobs,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        access_log=args.access_log, trace_out=args.serve_trace_out,
        ledger_dir=args.ledger_dir, no_ledger=args.no_ledger,
        events_keepalive=_resolve_keepalive(args),
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_to=args.heartbeat_to, alert_rules=args.alert_rules,
        worker_id=args.worker_id)

    telemetry = None
    if args.access_log:
        # The service needs its own collector even when --profile is
        # off: the access log rides on 'request' telemetry events.
        sink = RequestLogSink(args.access_log)
        try:
            sink.open()
        except OSError as exc:
            print(f"repro: cannot open access log: {exc}", file=sys.stderr)
            return 2
        current = get_telemetry()
        if isinstance(current, Telemetry):
            current.sinks.append(sink)  # --profile/--trace-out is active
        else:
            telemetry = Telemetry(sinks=[sink])

    EvaluationService(config, telemetry=telemetry).run()
    return 0


def _runs_ledger(args) -> RunLedger:
    return RunLedger(args.ledger_dir)


def _headline_metric(record) -> str:
    """The one number worth a column in ``runs list``."""
    if record.get("kind") == "alert":
        # Alert records are the incident history: the transition and
        # rule name say more than any single number.
        if "ok" in record:  # an `alerts check` gate record
            verdict = "ok" if record["ok"] else "FAILED"
            return (f"check {verdict} "
                    f"({len(record.get('violations') or [])} violation(s))")
        event = str(record.get("event", "alert")).split(".")[-1]
        name = record.get("config", {}).get("alert", "?")
        value = record.get("value")
        detail = "" if value is None else f" (value {value:g})"
        return f"{event}: {name}{detail}"
    for label, path in (("faults/s", "faults_per_sec"),
                        ("coverage", "coverage"),
                        ("speedup", "speedup"),
                        ("seconds", "duration_seconds")):
        value = metric_value(record, path)
        if value is None and path in record \
                and isinstance(record[path], (int, float)) \
                and not isinstance(record[path], bool):
            value = float(record[path])
        if value is not None:
            if label == "faults/s":
                return f"{label}={value:,.0f}"
            return f"{label}={value:.4g}"
    return "-"


def _cmd_runs_list(args) -> int:
    from datetime import datetime, timezone

    records = _runs_ledger(args).tail(max(1, args.last), kind=args.kind)
    if not records:
        print(f"no runs recorded in {_runs_ledger(args).path}")
        return 0
    for record in records:
        created = datetime.fromtimestamp(
            float(record["created_unix"]),
            tz=timezone.utc).strftime("%Y-%m-%d %H:%M:%S")
        sha = str(record.get("git_sha") or "-")[:8]
        print(f"{str(record['id'])[:12]}  {record['kind']:<14s} "
              f"{created}Z  {sha:<8s}  {_headline_metric(record)}")
    return 0


def _cmd_runs_show(args) -> int:
    import json

    print(json.dumps(_runs_ledger(args).get(args.run), indent=2,
                     sort_keys=True))
    return 0


def _flatten_numeric(node, prefix=""):
    """Dotted-path -> float map over a record's nested dicts."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(_flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix[:-1]] = float(node)
    return out


def _cmd_runs_compare(args) -> int:
    ledger = _runs_ledger(args)
    rec_a, rec_b = ledger.get(args.run_a), ledger.get(args.run_b)
    flat_a = _flatten_numeric({k: rec_a.get(k)
                               for k in ("bench", "metrics",
                                         "duration_seconds", "coverage",
                                         "missed", "speedup")})
    flat_b = _flatten_numeric({k: rec_b.get(k)
                               for k in ("bench", "metrics",
                                         "duration_seconds", "coverage",
                                         "missed", "speedup")})
    print(f"A: {str(rec_a['id'])[:12]} ({rec_a['kind']})   "
          f"B: {str(rec_b['id'])[:12]} ({rec_b['kind']})")
    if rec_a.get("config_fingerprint") != rec_b.get("config_fingerprint"):
        print("note: configs differ (fingerprints do not match)")
    for key in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(key), flat_b.get(key)
        if va is None or vb is None:
            print(f"  {key:<40s} "
                  f"{'-' if va is None else f'{va:,.4g}':>14s} -> "
                  f"{'-' if vb is None else f'{vb:,.4g}':>14s}")
            continue
        delta = f"{100.0 * (vb - va) / va:+.1f}%" if va else "n/a"
        print(f"  {key:<40s} {va:>14,.4g} -> {vb:>14,.4g}  {delta}")
    return 0


def _cmd_runs_trend(args) -> int:
    from datetime import datetime, timezone

    records = _runs_ledger(args).records(kind=args.kind)
    history = [(r, metric_value(r, args.metric)) for r in records]
    history = [(r, v) for r, v in history if v is not None]
    for record, value in history[-(args.last + 1):]:
        created = datetime.fromtimestamp(
            float(record["created_unix"]),
            tz=timezone.utc).strftime("%Y-%m-%d %H:%M")
        print(f"  {str(record['id'])[:12]}  {created}Z  "
              f"{args.metric} = {value:,.4g}")
    report = trend_check(records, args.metric, last=args.last,
                         tolerance=args.tolerance,
                         direction=args.direction)
    print(report.describe())
    if args.check and not report.ok:
        return 1
    return 0


def _cmd_runs_validate(args) -> int:
    if args.schema:
        from .reports import validate_report_files

        for line in validate_report_files(args.schema):
            print(line)
        return 0
    ledger = _runs_ledger(args)
    records = ledger.records(validate=True)  # raises on any bad line
    kinds: dict = {}
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    breakdown = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
    print(f"{len(records)} valid record(s) in {ledger.path}"
          + (f" ({breakdown})" if breakdown else ""))
    return 0


def _cmd_runs_watch(args) -> int:
    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, client_id="repro-runs-watch")
    is_tty = sys.stdout.isatty()

    def render(stream: str, doc) -> None:
        done, total = doc.get("done"), doc.get("total")
        head = f"[{stream}] {done:g}" if done is not None else f"[{stream}]"
        if total:
            head += f"/{total:g}"
        parts = [head]
        if doc.get("fraction") is not None:
            parts.append(f"{100.0 * doc['fraction']:5.1f}%")
        if doc.get("coverage") is not None:
            parts.append(f"coverage={doc['coverage']:.4f}")
        if doc.get("eta_seconds") is not None:
            parts.append(f"eta={doc['eta_seconds']:.0f}s")
        line = "  ".join(parts)
        if is_tty:
            print("\r" + line.ljust(76), end="", flush=True)
        else:
            print(line)

    import time

    # --timeout is an overall deadline: a live stream that only sends
    # keepalives (a hung job) must still fail by then, so the clock is
    # checked both here per event and inside the stream reader per
    # received line (client.events deadline=).
    deadline = (time.monotonic() + args.timeout
                if args.timeout > 0 else None)
    timed_out = False
    final_state = None
    poll_reason = None
    try:
        for event in client.events(args.job, deadline=args.timeout
                                   if args.timeout > 0 else None):
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                break
            name, data = event.get("event"), event.get("data", {})
            if name == "progress":
                render(str(data.get("stream", "progress")), data)
            elif name == "job":
                state = data.get("state")
                for stream, doc in sorted(
                        (data.get("progress") or {}).items()):
                    render(stream, doc)
                if state in ("done", "failed", "cancelled"):
                    final_state = state
                    break
            elif name == "shutdown":
                break
    except TimeoutError as exc:
        # The stream going quiet before the deadline is a transport
        # problem, not expiry — poll the job instead.
        if deadline is not None and time.monotonic() >= deadline:
            timed_out = True
        else:
            poll_reason = exc
    except (ServiceClientError, OSError) as exc:
        if isinstance(exc, ServiceClientError) and exc.status == 404:
            print(f"repro: no such job {args.job!r} at {args.url}",
                  file=sys.stderr)
            return 1
        poll_reason = exc
    if poll_reason is not None:
        logger.info("event stream unavailable (%s); falling back to "
                    "polling", poll_reason)
        while final_state is None and not timed_out:
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                break
            doc = client.job(args.job,
                             wait=min(max(args.interval, 0.1), 30.0))
            for stream, pdoc in sorted((doc.get("progress") or {}).items()):
                render(stream, pdoc)
            if doc.get("state") in ("done", "failed", "cancelled"):
                final_state = doc["state"]
            else:
                time.sleep(max(args.interval, 0.1))
    if is_tty:
        print()
    if timed_out:
        print(f"repro: job {args.job} not terminal after "
              f"{args.timeout:g}s (--timeout)", file=sys.stderr)
        return 1
    if final_state is None:
        try:
            final_state = str(client.job(args.job).get("state", "unknown"))
        except (ServiceClientError, OSError):
            final_state = "unknown"
    print(f"job {args.job}: {final_state}")
    return 0 if final_state == "done" else 1


def _cmd_runs(args) -> int:
    handler = {
        "list": _cmd_runs_list,
        "show": _cmd_runs_show,
        "compare": _cmd_runs_compare,
        "trend": _cmd_runs_trend,
        "validate": _cmd_runs_validate,
        "watch": _cmd_runs_watch,
    }[args.runs_command]
    return handler(args)


def _cmd_cluster(args) -> int:
    import json
    import time

    from .cluster import run_cluster_sweep

    cache = _make_cache(args)
    report = run_cluster_sweep(
        args.endpoints,
        design=args.design, generator=args.generator,
        vectors=args.vectors, width=args.width,
        faults_limit=args.faults, shard_faults=args.shard_faults,
        schedule=args.schedule, schedule_bins=args.schedule_bins,
        schedule_seed=args.schedule_seed, chunk=args.chunk,
        engine=args.engine,
        misr_width=args.misr_width, shard_timeout=args.shard_timeout,
        max_retries=args.max_retries,
        straggler_factor=args.straggler_factor,
        straggler_min=args.straggler_min, poll=args.poll,
        heartbeat_poll=args.heartbeat_poll,
        verify=args.verify, cache=cache)
    doc = report.to_doc()
    merged = report.merged
    engine_name = _gate_engine_name(args.engine or None)
    print(f"cluster sweep: {doc['params']['design']} x "
          f"{doc['params']['generator']}  {doc['params']['vectors']} "
          f"vectors  {merged.total} faults  engine={engine_name}")
    print(f"  coverage {100.0 * merged.coverage:6.2f}%  "
          f"({merged.total - merged.detected} missed)  "
          f"signature {doc['signature']}")
    print(f"  {doc['shards']} shard(s), {doc['attempts']} attempt(s), "
          f"{doc['retries']} retried, {doc['speculated']} speculated, "
          f"{doc['duplicates']} duplicate result(s)  "
          f"in {doc['elapsed_seconds']:.2f}s")
    for worker in doc["workers"]:
        print(f"  worker {worker['endpoint']}: {worker['shards']} "
              f"shard(s), {worker['faults']} faults, "
              f"{worker['busy_seconds']:.2f}s busy, "
              f"{worker['failures']} failure(s)")
    if report.endpoint_health is not None:
        for ep, health in report.endpoint_health.items():
            print(f"  health {ep}: {health['state']} "
                  f"({health['polls']} poll(s), "
                  f"{health['failures']} failed)")
    if report.verified is not None:
        print(f"  single-node verify: "
              f"{'identical' if report.verified else 'DIVERGED'}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote cluster report to {args.out}")
    # The throughput headline (merged faults over wall-clock, engine
    # named alongside) is what `repro runs trend --check` gates on
    # across cluster-sweep history.
    _ledger_append(args, build_record(
        "cluster-sweep",
        config=dict(doc["params"], endpoints=sorted(set(args.endpoints)),
                    shard_faults=args.shard_faults,
                    schedule=args.schedule, engine=engine_name),
        created_unix=time.time(),
        metrics=summarize_telemetry() or None,
        git_sha=current_git_sha(),
        duration_seconds=report.elapsed_seconds,
        coverage_curve=[(t, c) for t, c in merged.checkpoints],
        bench={"faults_per_sec": (merged.total
                                  / report.elapsed_seconds
                                  if report.elapsed_seconds else 0.0)},
        extra={"coverage": float(merged.coverage),
               "missed": merged.total - merged.detected,
               "signature": doc["signature"],
               "shards": doc["shards"],
               "attempts": doc["attempts"],
               "retries": doc["retries"],
               "speculated": doc["speculated"],
               "workers": doc["workers"],
               "shard_timings": doc["shard_timings"]}))
    return 0


def _cmd_loadtest(args) -> int:
    import json
    import time

    from .cluster.loadtest import run_loadtest

    kinds = tuple(k.strip() for k in args.kinds.split(",")
                  if k.strip()) if args.kinds else ()
    report = run_loadtest(
        args.url, concurrency=args.concurrency, duration=args.duration,
        kinds=kinds, seed=args.seed, job_timeout=args.job_timeout)
    doc = report.to_doc()
    lat = doc["latency_seconds"]
    print(f"loadtest {args.url}: {doc['concurrency']} client(s) for "
          f"{report.elapsed_seconds:.1f}s")
    print(f"  {doc['requests']} requests: {doc['completed']} completed, "
          f"{doc['busy']} busy (429/503), {doc['errors']} errors")
    print(f"  throughput {doc['throughput_jobs_per_second']:.2f} jobs/s  "
          f"busy rate {100.0 * doc['busy_rate']:.1f}%")
    print(f"  turnaround p50 {lat['p50']:.3f}s  p90 {lat['p90']:.3f}s  "
          f"p99 {lat['p99']:.3f}s  max {lat['max']:.3f}s")
    for kind, entry in doc["by_kind"].items():
        klat = entry["latency_seconds"]
        print(f"  {kind:12s} {entry['requests']:5d} requests  "
              f"p50 {klat['p50']:.3f}s  p99 {klat['p99']:.3f}s  "
              f"{entry['busy']} busy  {entry['errors']} errors")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote loadtest report to {args.out}")
    _ledger_append(args, build_record(
        "loadtest",
        config={"url": args.url, "concurrency": args.concurrency,
                "duration": args.duration, "kinds": sorted(kinds),
                "seed": args.seed},
        created_unix=time.time(),
        git_sha=current_git_sha(),
        duration_seconds=report.elapsed_seconds,
        extra={"requests": doc["requests"],
               "completed": doc["completed"],
               "busy": doc["busy"], "errors": doc["errors"],
               "busy_rate": doc["busy_rate"],
               "throughput_jobs_per_second":
                   doc["throughput_jobs_per_second"],
               "latency_seconds": lat}))
    if args.check:
        failures = report.check(
            max_p99=args.max_p99, min_throughput=args.min_throughput,
            max_busy_rate=args.max_busy_rate,
            max_error_rate=args.max_error_rate,
            min_completed=args.min_completed)
        for failure in failures:
            print(f"loadtest check FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("loadtest check ok")
    return 0


def _render_fleet(doc, url: str) -> str:
    """One ``repro top`` frame from a ``/v1/fleet`` snapshot."""
    from datetime import datetime, timezone

    totals = doc.get("totals") or {}
    generated = doc.get("generated_unix")
    stamp = ""
    if generated:
        stamp = datetime.fromtimestamp(
            float(generated),
            tz=timezone.utc).strftime("%Y-%m-%d %H:%M:%SZ")
    lines = [f"repro top — {url}  {stamp}".rstrip()]
    lines.append(
        f"workers {totals.get('workers', 0)}  "
        f"({totals.get('live', 0)} live, "
        f"{totals.get('suspect', 0)} suspect, "
        f"{totals.get('dead', 0)} dead)   "
        f"{totals.get('faults_per_sec', 0.0):,.0f} faults/s   "
        f"queue {totals.get('queue_depth', 0)}   "
        f"inflight {totals.get('inflight', 0)}")
    for alert in doc.get("alerts") or []:
        lines.append(f"ALERT [{alert.get('severity', '?')}] "
                     f"{alert.get('alert', '?')}: {alert.get('rule', '')} "
                     f"(value {alert.get('value')})")
    lines.append("")
    lines.append(f"{'WORKER':<26} {'STATE':<8} {'PID':>7} {'BEATS':>6} "
                 f"{'FAULTS/S':>10} {'QUEUE':>6} {'MISS':>5}  PROGRESS")
    for worker in doc.get("workers") or []:
        progress = ""
        for name, cursor in sorted((worker.get("progress") or {}).items()):
            done = float(cursor.get("done", 0))
            total = cursor.get("total")
            if total:
                progress = f"{name} {100.0 * done / float(total):5.1f}%"
                break  # one stream with a known total says it best
            progress = f"{name} {done:g}"
        queue = worker.get("queue_depth")
        queue = "-" if queue is None else str(queue)
        lines.append(
            f"{str(worker.get('worker', '?')):<26.26} "
            f"{str(worker.get('state', '?')):<8} "
            f"{worker.get('pid', 0):>7} "
            f"{worker.get('beats', 0):>6} "
            f"{worker.get('faults_per_sec', 0.0):>10,.0f} "
            f"{queue:>6} "
            f"{worker.get('missed_beats', 0.0):>5.1f}  "
            f"{progress}".rstrip())
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time

    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, client_id="repro-top",
                           timeout=max(5.0, args.interval * 2))
    is_tty = sys.stdout.isatty() and not args.once
    deadline = (time.monotonic() + args.duration
                if args.duration > 0 else None)
    failures = 0
    try:
        while True:
            try:
                doc = client.fleet()
            except (ServiceClientError, OSError) as exc:
                failures += 1
                if args.once or failures >= 3:
                    print(f"repro: fleet endpoint unavailable at "
                          f"{args.url}: {exc}", file=sys.stderr)
                    return 1
            else:
                failures = 0
                frame = _render_fleet(doc, args.url)
                if is_tty:
                    # Home + clear-to-end keeps the frame flicker-free.
                    print(f"\x1b[H\x1b[2J{frame}", flush=True)
                else:
                    print(frame)
                if args.once:
                    return 0
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(max(args.interval, 0.2))
    except KeyboardInterrupt:
        if is_tty:
            print()
        return 0


def _cmd_alerts_check(args) -> int:
    import json
    import time

    from .telemetry.alerts import check_rules, load_rules

    rules = load_rules(args.rules)
    if args.url:
        from .service.client import ServiceClient

        source = args.url
        doc = ServiceClient(args.url,
                            client_id="repro-alerts-check").fleet()
        values = _fleet_doc_values(doc)
    elif args.snapshot:
        source = args.snapshot
        with open(args.snapshot, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        values = _fleet_doc_values(doc)
    else:
        source = args.loadtest
        with open(args.loadtest, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        # Same keys a live LoadtestReport.alert_values() exposes, read
        # from the saved report's aggregates.
        values = {}
        for key, path in (("loadtest.requests", "requests"),
                          ("loadtest.completed", "completed"),
                          ("loadtest.busy_rate", "busy_rate"),
                          ("loadtest.error_rate", "error_rate"),
                          ("loadtest.throughput_jobs_per_second",
                           "throughput_jobs_per_second")):
            if path in doc:
                values[key] = float(doc[path])
        lat = doc.get("latency_seconds") or {}
        for q in ("p50", "p90", "p99", "mean", "max"):
            if q in lat:
                values[f"loadtest.{q}_seconds"] = float(lat[q])
    violations = check_rules(rules, values)
    for violation in violations:
        print(f"alert check FAILED: {violation}", file=sys.stderr)
    _ledger_append(args, build_record(
        "alert",
        config={"rules": args.rules, "source": source,
                "rule_names": [r.name for r in rules]},
        created_unix=time.time(),
        git_sha=current_git_sha(),
        extra={"violations": violations,
               "checked": len(rules),
               "ok": not violations}))
    if violations:
        return 1
    print(f"alert check ok ({len(rules)} rule(s) against {source})")
    return 0


def _fleet_doc_values(doc) -> dict:
    """Merged metric values reconstructed from a fleet snapshot doc.

    A live ``/v1/fleet`` endpoint or a saved snapshot file carries the
    per-worker documents, not the raw instrument snapshots, so the
    check evaluates against the fleet-level totals plus every
    per-worker rate summed by name — the same names the serve-side
    :meth:`~repro.telemetry.fleet.FleetView.merged_values` exposes for
    gauges, rates and ``fleet.*`` aggregates.
    """
    totals = doc.get("totals") or {}
    values = {
        "fleet.workers": float(totals.get("workers", 0)),
        "fleet.workers.live": float(totals.get("live", 0)),
        "fleet.workers.suspect": float(totals.get("suspect", 0)),
        "fleet.workers.dead": float(totals.get("dead", 0)),
        "fleet.faults_per_sec": float(totals.get("faults_per_sec", 0.0)),
        "fleet.queue_depth": float(totals.get("queue_depth", 0)),
    }
    restarts = 0
    for worker in doc.get("workers") or []:
        restarts += int(worker.get("restarts", 0))
        if worker.get("state") == "dead":
            continue
        for name, rate in (worker.get("rates") or {}).items():
            key = f"{name}.rate" if not name.endswith(".rate") else name
            values[key] = values.get(key, 0.0) + float(rate)
    values["fleet.restarts"] = float(restarts)
    return values


def _cmd_alerts(args) -> int:
    return {"check": _cmd_alerts_check}[args.alerts_command](args)


def _cmd_artifacts(args) -> int:
    from .cache.server import ArtifactServer
    from .cache.store import default_cache_dir

    root = args.root if args.root else default_cache_dir()
    server = ArtifactServer(root, host=args.host, port=args.port,
                            max_bytes=args.max_bytes or None)
    budget = (f"{args.max_bytes:,} bytes LRU budget" if args.max_bytes
              else "unbounded")
    print(f"serving artifact store {root} on {server.url} ({budget})")
    print("point workers at it with: "
          f"repro serve --cache-dir {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _dispatch(args, tel: Optional[Telemetry]) -> int:
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "artifacts":
        return _cmd_artifacts(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "alerts":
        return _cmd_alerts(args)
    if args.command == "recommend":
        return _cmd_recommend(args)

    ctx = ExperimentContext()

    if args.command == "stats":
        for name, design in ctx.designs.items():
            s = design_statistics(design)
            print(f"{name}: {s.adders} operators, {s.registers} registers, "
                  f"in {s.input_width}b / coef {s.coefficient_width}b / "
                  f"out {s.output_width}b, {s.faults} faults "
                  f"({s.uncollapsed_faults} uncollapsed)")
        return 0

    if args.command == "grade":
        name = resolve_design(args.design)
        design = ctx.designs[name]
        gen = make_generator(resolve_generator(args.generator),
                             args.width, args.vectors)
        result = run_fault_coverage(design, gen, args.vectors,
                                    universe=ctx.universe(name))
        print(coverage_summary(result))
        if args.map:
            print(missed_fault_map(result))
        if args.report:
            from .faultsim.report import testability_report
            print(testability_report(design, result))
        return 0

    if args.command == "rank":
        name = resolve_design(args.design)
        design = ctx.designs[name]
        print(f"compatibility with {name}:")
        for r in rank_generators(design):
            print(f"  {r.generator.name:12s} {r.rating}  {r.ratio:7.3f}")
        scheme = propose_scheme(design, n_vectors=args.vectors)
        print(f"proposed scheme: {scheme.name}")
        return 0

    if args.command == "spectrum":
        gen = make_generator(resolve_generator(args.generator),
                             args.width, 4096)
        freqs, power = generator_spectrum(gen)
        step = max(1, len(freqs) // args.points)
        print(series_block(freqs[::step], power_db(power[::step]),
                           "freq", "power (dB)", title=gen.name))
        return 0

    if args.command == "table":
        print(_TABLES[args.number](ctx).render())
        return 0

    if args.command == "figure":
        fig = _FIGURES[args.number]
        result = fig() if args.number == 1 else fig(ctx)
        print(result.render())
        return 0

    if args.command == "report":
        if args.trace:
            import os.path

            from .telemetry import load_trace, write_run_report

            out = args.out
            if out == "reproduction_report.md":  # the markdown default
                out = os.path.splitext(args.trace)[0] + ".html"
            events = load_trace(args.trace)
            write_run_report(
                out, events,
                title=f"repro run report — {os.path.basename(args.trace)}")
            print(f"wrote {out}")
            return 0
        from .experiments.report import save_report
        include = None
        if args.only == "tables":
            include = ["Table"]
        elif args.only == "figures":
            include = ["Figure"]
        save_report(args.out, ctx, include=include)
        print(f"wrote {args.out}")
        return 0

    if args.command == "export":
        name = resolve_design(args.design)
        design = ctx.designs[name]
        if args.format == "json":
            from .rtl import save_design
            save_design(design, args.out)
        else:
            from .gates import elaborate, save_verilog
            save_verilog(elaborate(design.graph), args.out,
                         module_name=f"{name.lower()}_cut")
        print(f"wrote {args.out}")
        return 0

    if args.command == "profile":
        assert tel is not None  # the profile command always collects
        return _cmd_profile(args, ctx, tel)

    raise AssertionError("unreachable")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    summary_to_log = args.profile and args.command != "profile"
    _configure_logging(args.verbose, force_info=summary_to_log)
    profiling = bool(args.profile or args.trace_out
                     or args.command == "profile")

    tel: Optional[Telemetry] = None
    previous = None
    if profiling:
        sinks = []
        if args.trace_out:
            trace_sink = JsonlSink(args.trace_out)
            try:
                trace_sink.open()
            except OSError as exc:
                print(f"repro: cannot open trace file: {exc}",
                      file=sys.stderr)
                return 2
            sinks.append(trace_sink)
        if summary_to_log:
            sinks.append(LoggingSummarySink())
        tel = Telemetry(sinks=sinks)
        previous = set_telemetry(tel)
        logger.debug("telemetry enabled (command=%s)", args.command)

    try:
        return _dispatch(args, tel)
    except ReproError as exc:
        # One-line diagnosis (unknown design/generator names, bad grid
        # specs, ...) instead of a traceback; exit code 2 like argparse.
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    finally:
        if profiling:
            set_telemetry(previous)
            tel.flush()
            tel.close()
            if args.trace_out:
                logger.info("wrote telemetry trace to %s", args.trace_out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
