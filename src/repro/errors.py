"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``IndexError`` ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FixedPointError(ReproError):
    """Invalid fixed-point format or out-of-range raw value."""


class CsdError(ReproError):
    """Invalid canonic-signed-digit encoding or unsatisfiable constraint."""


class DesignError(ReproError):
    """Malformed RTL graph or unrealizable filter design."""


class SimulationError(ReproError):
    """Datapath or gate-level simulation failure."""


class FaultModelError(ReproError):
    """Inconsistent fault universe or unknown fault reference."""


class GeneratorError(ReproError):
    """Invalid test-pattern-generator configuration."""


class AnalysisError(ReproError):
    """Frequency-domain or statistical analysis failure."""


class TelemetryError(ReproError):
    """Invalid telemetry instrument, span or sink usage."""


class CacheError(ReproError):
    """Invalid artifact-cache key, payload or store configuration."""


class ParallelError(ReproError):
    """Parallel execution-layer misconfiguration or unrecoverable failure."""


class LedgerError(ReproError):
    """Malformed run-ledger record, unknown run id, or trend-gate failure."""


class ClusterError(ReproError):
    """Sharded-fleet failure: exhausted retries, incomplete or
    inconsistent shard merge, or no reachable workers."""


class ServiceError(ReproError):
    """Evaluation-service failure (invalid request, overload, shutdown).

    ``status`` is the HTTP status the service maps the error to;
    ``retry_after`` (seconds), when set, becomes a ``Retry-After``
    header so well-behaved clients can back off precisely.
    """

    status = 500

    def __init__(self, message: str, status: "int | None" = None,
                 retry_after: "float | None" = None):
        super().__init__(message)
        if status is not None:
            self.status = status
        self.retry_after = retry_after
