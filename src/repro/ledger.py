"""The run ledger: an append-only, content-addressed run registry.

Every substantial run — a ``sweep`` grid, a ``bench`` measurement, a
``profile`` session, a finished service job — appends one JSON record
to a shared JSONL file, giving the repo what a single overwritten
``BENCH_*.json`` cannot: *memory across runs*.  A record carries the
run's provenance (config fingerprint, git sha, trace id, timestamp),
its outcome metrics (counters, gauges, histogram summaries, bench
rates) and, for grading runs, coverage-curve checkpoints — the paper's
own habit of tracking detection quality over test length rather than
only the final verdict, made durable.

Records are **content-addressed**: a record's ``id`` is the SHA-256 of
its canonical content (everything except the ``id`` itself), so equal
runs address equal ids, appends are idempotent, and a record can never
be edited in place without changing identity.  The file is only ever
opened for append; one record is one line.

On top of the history sits a **statistical regression gate**
(:func:`trend_check`): instead of comparing a fresh benchmark against
one hard-coded floor, the newest record is compared against the median
of the last *N* prior runs of the same kind with a tolerance band —
robust to one noisy CI machine, sensitive to a real 30% regression.

CLI: the ``repro runs`` family (``list``, ``show``, ``compare``,
``trend``, ``watch``, ``validate``) in :mod:`repro.cli`.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import subprocess
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from .cache.keys import stable_hash
from .errors import LedgerError
from .telemetry import get_telemetry

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "TrendReport",
    "build_record",
    "current_git_sha",
    "default_ledger_dir",
    "metric_value",
    "record_id",
    "summarize_telemetry",
    "trend_check",
    "validate_record",
]

#: Schema tag every ledger record carries; bump on incompatible change.
LEDGER_SCHEMA = "repro-ledger/1"

#: File name inside the ledger directory.
LEDGER_FILE = "ledger.jsonl"

#: Run kinds the registry recognizes.
RUN_KINDS = ("sweep", "bench-parallel", "bench-gates", "bench-schedule",
             "profile", "service-job", "cluster-sweep", "loadtest", "alert")

_REQUIRED_FIELDS = ("schema", "id", "kind", "created_unix", "config",
                    "config_fingerprint")


def default_ledger_dir() -> str:
    """``$REPRO_LEDGER_DIR``, else a per-user state directory."""
    env = os.environ.get("REPRO_LEDGER_DIR", "").strip()
    if env:
        return env
    state_home = os.environ.get("XDG_STATE_HOME",
                                os.path.expanduser("~/.local/state"))
    return os.path.join(state_home, "repro", "ledger")


def current_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The working tree's HEAD sha, or ``None`` outside a git checkout.

    Provenance is best-effort by design: a missing ``git`` binary or a
    tarball checkout must never fail a benchmark run.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def record_id(record: Dict[str, Any]) -> str:
    """The content address of a record: hash of everything but ``id``."""
    body = {k: v for k, v in record.items() if k != "id"}
    return stable_hash(body)


def summarize_telemetry(tel=None) -> Dict[str, Any]:
    """Counter/gauge values + histogram summaries of a collector.

    The compact metric block embedded in run records — full bucket
    arrays stay in traces; the ledger keeps the queryable summary.
    """
    tel = tel if tel is not None else get_telemetry()
    if not getattr(tel, "enabled", False):
        return {}
    out: Dict[str, Any] = {}
    for name, inst in sorted(tel.metrics().items()):
        kind = getattr(inst, "kind", None)
        if kind in ("counter", "gauge"):
            out[name] = inst.value
        elif kind == "histogram" and inst.count:
            out[name] = dict(inst.summary(), count=inst.count,
                             mean=inst.mean)
    return out


def build_record(kind: str, *,
                 config: Dict[str, Any],
                 created_unix: float,
                 metrics: Optional[Dict[str, Any]] = None,
                 bench: Optional[Dict[str, Any]] = None,
                 coverage_curve: Optional[Iterable] = None,
                 git_sha: Optional[str] = None,
                 trace_id: Optional[str] = None,
                 duration_seconds: Optional[float] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble (and content-address) one valid ledger record.

    ``config`` is the run's knob dict; its :func:`stable_hash` becomes
    the ``config_fingerprint``, so "same configuration, different day"
    runs are groupable without comparing nested dicts.  ``bench`` holds
    the headline rates a trend gate reads (``faults_per_sec``, ...);
    ``coverage_curve`` is a list of ``[vectors, coverage]`` checkpoints.
    """
    record: Dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "created_unix": float(created_unix),
        "config": dict(config),
        "config_fingerprint": stable_hash(dict(config)),
    }
    if git_sha is not None:
        record["git_sha"] = git_sha
    if trace_id is not None:
        record["trace_id"] = trace_id
    if duration_seconds is not None:
        record["duration_seconds"] = float(duration_seconds)
    if metrics:
        record["metrics"] = dict(metrics)
    if bench:
        record["bench"] = dict(bench)
    if coverage_curve is not None:
        record["coverage_curve"] = [[float(a), float(b)]
                                    for a, b in coverage_curve]
    if extra:
        record.update(extra)
    record["id"] = record_id(record)
    validate_record(record)
    return record


def validate_record(record: Dict[str, Any]) -> None:
    """Raise :class:`~repro.errors.LedgerError` unless ``record`` is a
    well-formed, correctly addressed ``repro-ledger/1`` record."""
    if not isinstance(record, dict):
        raise LedgerError(f"ledger record must be an object, "
                          f"got {type(record).__name__}")
    missing = [f for f in _REQUIRED_FIELDS if f not in record]
    if missing:
        raise LedgerError(f"ledger record is missing required field(s): "
                          f"{', '.join(missing)}")
    if record["schema"] != LEDGER_SCHEMA:
        raise LedgerError(f"unsupported ledger schema "
                          f"{record['schema']!r}; expected {LEDGER_SCHEMA}")
    if record["kind"] not in RUN_KINDS:
        raise LedgerError(f"unknown run kind {record['kind']!r}; "
                          f"valid kinds: {', '.join(RUN_KINDS)}")
    if not isinstance(record["config"], dict):
        raise LedgerError("ledger record 'config' must be an object")
    if not isinstance(record["created_unix"], (int, float)):
        raise LedgerError("ledger record 'created_unix' must be a number")
    expected = record_id(record)
    if record["id"] != expected:
        raise LedgerError(
            f"ledger record id {str(record['id'])[:12]}... does not match "
            f"its content address {expected[:12]}... — record was edited "
            f"or corrupted")


def metric_value(record: Dict[str, Any], metric: str) -> Optional[float]:
    """Resolve ``metric`` against a record.

    Accepts a dotted path (``bench.faults_per_sec``,
    ``metrics.gates.faults_dropped``) and, for convenience, a bare name
    looked up under ``bench`` then ``metrics``.
    """
    def _resolve(node: Any, parts: List[str]) -> Optional[Any]:
        for i, part in enumerate(parts):
            if not isinstance(node, dict):
                return None
            if part in node:
                node = node[part]
                continue
            # metric names themselves contain dots (gates.faults_graded):
            # try the longest joined suffix as one key.
            joined = ".".join(parts[i:])
            return node.get(joined) if isinstance(node, dict) else None
        return node

    value: Optional[Any] = None
    if "." in metric:
        value = _resolve(record, metric.split("."))
    if value is None:
        for section in ("bench", "metrics"):
            block = record.get(section)
            if isinstance(block, dict) and metric in block:
                value = block[metric]
                break
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


@dataclass
class TrendReport:
    """Verdict of one history-aware regression check."""

    metric: str
    kind: str
    current: float
    baseline: float          # median of the prior window
    window: int              # prior runs the baseline was computed over
    tolerance: float
    direction: str           # "higher" or "lower" is better
    ok: bool

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return math.inf if self.current > 0 else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        arrow = {"higher": ">=", "lower": "<="}[self.direction]
        bound = (self.baseline * (1.0 - self.tolerance)
                 if self.direction == "higher"
                 else self.baseline * (1.0 + self.tolerance))
        verdict = "ok" if self.ok else "REGRESSION"
        return (f"trend {verdict}: {self.metric} = {self.current:,.4g} vs "
                f"median-of-{self.window} baseline {self.baseline:,.4g} "
                f"(need {arrow} {bound:,.4g}, tolerance "
                f"{self.tolerance:.0%})")


def trend_check(records: List[Dict[str, Any]], metric: str, *,
                last: int = 5, tolerance: float = 0.2,
                direction: str = "higher") -> TrendReport:
    """Gate the newest record against the median of its predecessors.

    ``records`` must be in append (chronological) order and all of one
    kind; the newest is the candidate, the up-to-``last`` runs before
    it form the baseline window.  ``direction="higher"`` passes when
    ``current >= median * (1 - tolerance)`` (throughput metrics);
    ``"lower"`` inverts the band (latency metrics).
    """
    if direction not in ("higher", "lower"):
        raise LedgerError(f"direction must be 'higher' or 'lower', "
                          f"got {direction!r}")
    if last < 1:
        raise LedgerError(f"trend window must be >= 1, got {last}")
    if not 0.0 <= tolerance < 1.0:
        raise LedgerError(f"tolerance must be in [0, 1), got {tolerance}")
    usable = [(r, metric_value(r, metric)) for r in records]
    usable = [(r, v) for r, v in usable if v is not None]
    if len(usable) < 2:
        raise LedgerError(
            f"trend needs at least 2 records carrying metric {metric!r}, "
            f"found {len(usable)}")
    current_record, current = usable[-1]
    window = [v for _, v in usable[-1 - last:-1]]
    baseline = statistics.median(window)
    if direction == "higher":
        ok = current >= baseline * (1.0 - tolerance)
    else:
        ok = current <= baseline * (1.0 + tolerance)
    return TrendReport(metric=metric, kind=str(current_record.get("kind")),
                       current=current, baseline=baseline,
                       window=len(window), tolerance=tolerance,
                       direction=direction, ok=ok)


class RunLedger:
    """Append-only JSONL registry of run records under one directory."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root if root else default_ledger_dir())

    @property
    def path(self) -> str:
        return os.path.join(self.root, LEDGER_FILE)

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> str:
        """Validate and append one record; returns its id.

        Content addressing makes appends idempotent: a record whose id
        is already present is not written again.  The write is a single
        ``write()`` of one ``\\n``-terminated line on a file opened in
        append mode, so concurrent appenders interleave whole records.
        """
        validate_record(record)
        rid = str(record["id"])
        if any(r["id"] == rid for r in self.records()):
            return rid
        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("ledger.records_appended").add(1)
            tel.counter(f"ledger.records.{record['kind']}").add(1)
        return rid

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, kind: Optional[str] = None,
                validate: bool = False) -> List[Dict[str, Any]]:
        """Every record in append order, optionally one kind only.

        With ``validate=True`` each record is schema-checked and a bad
        line raises (the CI integrity pass); by default unreadable
        lines raise too — an append-only ledger with a corrupt line has
        lost its audit property and should fail loudly.
        """
        if not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{self.path}:{lineno}: unreadable ledger line: "
                        f"{exc}") from None
                if validate:
                    try:
                        validate_record(record)
                    except LedgerError as exc:
                        raise LedgerError(
                            f"{self.path}:{lineno}: {exc}") from None
                if kind is None or record.get("kind") == kind:
                    out.append(record)
        return out

    def get(self, run_id: str) -> Dict[str, Any]:
        """The record whose id starts with ``run_id`` (unique prefix)."""
        matches = [r for r in self.records()
                   if str(r.get("id", "")).startswith(run_id)]
        if not matches:
            raise LedgerError(f"no run {run_id!r} in {self.path}")
        if len(matches) > 1:
            raise LedgerError(
                f"run id prefix {run_id!r} is ambiguous "
                f"({len(matches)} matches); use more characters")
        return matches[0]

    def tail(self, n: int, kind: Optional[str] = None
             ) -> List[Dict[str, Any]]:
        return self.records(kind=kind)[-n:]
