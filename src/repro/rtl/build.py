"""Builders for multiplierless FIR datapaths.

The reference architecture is the transposed direct form used by
high-speed multiplierless designs (FIRGEN, Section 3 of the paper): a
cascade of *tap* structures, each holding a delay register on the
accumulation chain plus a hardwired CSD constant multiplication that is
*folded digit-by-digit into the chain*::

    x ────┬──────────────┬─────────── ... ──┬───────────
          │ >>s,±        │ >>s,±            │ >>s,±     (one shifted copy
          ▼▼             ▼▼                 ▼▼           per CSD digit)
    0 ─►(±)(±)──►D──►(±)(±)──►D──► ... ──►(±)(±)──►  y

Each nonzero CSD digit of each coefficient becomes exactly one
ripple-carry operator whose *primary* input is the running accumulation
signal (high variance) and whose *secondary* input is a shifted copy of
``x`` scaled by a single power of two (low variance) — the
variance-mismatched adder of Section 4.  Consequently the operator count
equals the total nonzero-digit count (plus one if the far tap leads with
a negative digit), matching the Table 1 adder budgets, and negative
digits/coefficients become subtractors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..csd import MultiplierPlan, QuantizedCoefficient, plan_multiplier, quantize_filter
from ..errors import DesignError
from ..fixedpoint import Fixed
from .graph import Graph
from .nodes import OpKind
from .scaling import ScalingReport, assign_formats

__all__ = ["TapInfo", "FilterDesign", "build_transposed_fir",
           "build_direct_fir", "design_from_coefficients"]


@dataclass
class TapInfo:
    """Where one tap's hardware lives in the graph.

    ``accumulator`` is the id of the node holding the running sum *after*
    this tap's full contribution (the paper's "tap k" signal); ``delay``
    is the register feeding this tap's first operator (None for the far
    tap); ``operators`` lists the ripple-carry ops realizing this tap's
    CSD digits, chain order.
    """

    index: int
    coefficient: QuantizedCoefficient
    plan: MultiplierPlan
    accumulator: Optional[int]
    delay: Optional[int]
    operators: List[int] = field(default_factory=list)


@dataclass
class FilterDesign:
    """A complete, scaled filter datapath plus its design metadata."""

    name: str
    graph: Graph
    taps: List[TapInfo]
    scaling: ScalingReport
    input_fmt: Fixed
    acc_frac: int
    kind: str = "custom"  # lowpass / bandpass / highpass / custom
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def coefficients(self) -> np.ndarray:
        """Realized (quantized) coefficient values, tap order."""
        return np.array([t.coefficient.value for t in self.taps])

    @property
    def ideal_coefficients(self) -> np.ndarray:
        """Pre-quantization coefficient values."""
        return np.array([t.coefficient.ideal for t in self.taps])

    @property
    def adder_count(self) -> int:
        """Total ripple-carry operators (adders + subtractors)."""
        return len(self.graph.arithmetic_nodes)

    @property
    def register_count(self) -> int:
        return self.graph.register_count

    @property
    def output_fmt(self) -> Fixed:
        return self.graph.output_node.fmt

    def tap_accumulator(self, tap_index: int) -> int:
        """Graph node id of the accumulated signal after ``tap_index``.

        Zero-coefficient taps contribute no operator; the nearest live
        accumulator *at or after* the requested tap (toward the output)
        is returned so analyses like the paper's "tap 20" always resolve.
        """
        for t in range(tap_index, -1, -1):
            acc = self.taps[t].accumulator
            if acc is not None:
                return acc
        raise DesignError(f"no accumulator at or before tap {tap_index}")

    def frequency_response(self, n_points: int = 1024) -> np.ndarray:
        """Complex H(e^jw) of the realized coefficients on [0, pi)."""
        w = np.linspace(0.0, np.pi, n_points, endpoint=False)
        k = np.arange(len(self.coefficients))
        return np.exp(-1j * np.outer(w, k)) @ self.coefficients


def build_transposed_fir(
    plans: Sequence[MultiplierPlan],
    input_fmt: Fixed = Fixed(12, 11),
    acc_frac: int = 15,
    name: str = "fir",
    scaling_mode: str = "l1",
    accumulator_width: Optional[int] = None,
    sigma_multiplier: float = 4.0,
) -> FilterDesign:
    """Build and scale a digit-folded transposed-form FIR.

    ``plans[k]`` realizes coefficient ``h[k]`` of ``y[n] = sum_k h[k] x[n-k]``.
    Widths come from L1 scaling analysis (redundant sign bits removed, per
    the paper's first design step); pass ``accumulator_width`` to force a
    uniform accumulation-chain width instead (the un-optimized
    conservative style, useful for headroom ablations).
    """
    if len(plans) < 2:
        raise DesignError("an FIR needs at least two taps")
    g = Graph(name=name)
    x = g.add(OpKind.INPUT, fmt=input_fmt, role="input", name="x")

    # Share shifted copies of x across taps using the same shift amount,
    # like the fanout wiring of real hardware.
    shift_cache: Dict[int, int] = {}

    def shifted_input(shift: int) -> int:
        if shift not in shift_cache:
            node = g.add(OpKind.SHIFT, (x.nid,), shift=shift, role="term",
                         name=f"x>>{shift}")
            shift_cache[shift] = node.nid
        return shift_cache[shift]

    taps: List[TapInfo] = []
    chain: Optional[int] = None  # running accumulation signal
    m = len(plans)
    for k in range(m - 1, -1, -1):  # build from the far end of the chain
        plan = plans[k]
        sign = -1 if plan.negate else 1
        delay_id: Optional[int] = None
        acc_id: Optional[int] = None
        operators: List[int] = []
        if chain is not None:
            delay = g.add(OpKind.DELAY, (chain,), role="delay", tap=k,
                          name=f"t{k}.reg")
            delay_id = delay.nid
            chain = delay.nid
        for j, term in enumerate(plan.terms):
            operand = shifted_input(term.shift)
            effective = sign * term.sign
            if chain is None:
                if effective > 0:
                    # The very first digit of the far tap is the chain.
                    chain = operand
                    acc_id = operand
                    continue
                zero = g.add(OpKind.CONST, role="const", name="zero")
                chain = zero.nid
            kind = OpKind.ADD if effective > 0 else OpKind.SUB
            node = g.add(kind, (chain, operand), role="accumulator", tap=k,
                         name=f"t{k}.d{j}")
            operators.append(node.nid)
            chain = node.nid
            acc_id = node.nid
        if plan.is_zero:
            acc_id = None
        taps.append(TapInfo(index=k, coefficient=plan.coefficient, plan=plan,
                            accumulator=acc_id, delay=delay_id,
                            operators=operators))
    if chain is None:
        raise DesignError("all coefficients are zero")
    taps.sort(key=lambda t: t.index)

    g.add(OpKind.OUTPUT, (chain,), role="output", name="y")
    report = assign_formats(
        g, frac=acc_frac, mode=scaling_mode,
        accumulator_width=accumulator_width, sigma_multiplier=sigma_multiplier,
    )
    return FilterDesign(
        name=name, graph=g, taps=taps, scaling=report,
        input_fmt=input_fmt, acc_frac=acc_frac,
    )


def build_direct_fir(
    plans: Sequence[MultiplierPlan],
    input_fmt: Fixed = Fixed(12, 11),
    acc_frac: int = 15,
    name: str = "fir-direct",
    scaling_mode: str = "l1",
    accumulator_width: Optional[int] = None,
    sigma_multiplier: float = 4.0,
) -> FilterDesign:
    """Direct-form alternative: delay line on ``x``, combinational sum.

    The input runs down a register chain (``M-1`` registers of the
    *input* width — cheaper storage than the transposed form's full-width
    chain), and all CSD digits fold combinationally into one accumulation
    chain.  Same operator census as the transposed form; used by the
    architecture ablation bench.
    """
    if len(plans) < 2:
        raise DesignError("an FIR needs at least two taps")
    g = Graph(name=name)
    x = g.add(OpKind.INPUT, fmt=input_fmt, role="input", name="x")

    # The x delay line.  Registers carry the input format.
    delayed: List[int] = [x.nid]
    for k in range(1, len(plans)):
        reg = g.add(OpKind.DELAY, (delayed[-1],), fmt=input_fmt,
                    role="delay", tap=k, name=f"x.z{k}")
        delayed.append(reg.nid)

    taps: List[TapInfo] = []
    chain: Optional[int] = None
    for k, plan in enumerate(plans):
        sign = -1 if plan.negate else 1
        operators: List[int] = []
        acc_id: Optional[int] = None
        shift_cache: Dict[int, int] = {}
        for j, term in enumerate(plan.terms):
            if term.shift not in shift_cache:
                node = g.add(OpKind.SHIFT, (delayed[k],), shift=term.shift,
                             role="term", tap=k, name=f"x.z{k}>>{term.shift}")
                shift_cache[term.shift] = node.nid
            operand = shift_cache[term.shift]
            effective = sign * term.sign
            if chain is None:
                if effective > 0:
                    chain = operand
                    acc_id = operand
                    continue
                zero = g.add(OpKind.CONST, role="const", name="zero")
                chain = zero.nid
            kind = OpKind.ADD if effective > 0 else OpKind.SUB
            node = g.add(kind, (chain, operand), role="accumulator", tap=k,
                         name=f"t{k}.d{j}")
            operators.append(node.nid)
            chain = node.nid
            acc_id = node.nid
        taps.append(TapInfo(index=k, coefficient=plan.coefficient, plan=plan,
                            accumulator=acc_id,
                            delay=delayed[k] if k else None,
                            operators=operators))
    if chain is None:
        raise DesignError("all coefficients are zero")
    g.add(OpKind.OUTPUT, (chain,), role="output", name="y")
    report = assign_formats(
        g, frac=acc_frac, mode=scaling_mode,
        accumulator_width=accumulator_width, sigma_multiplier=sigma_multiplier,
    )
    design = FilterDesign(
        name=name, graph=g, taps=taps, scaling=report,
        input_fmt=input_fmt, acc_frac=acc_frac,
    )
    design.extra["form"] = "direct"
    return design


def design_from_coefficients(
    coefficients: Sequence[float],
    name: str = "fir",
    input_fmt: Fixed = Fixed(12, 11),
    coef_frac: int = 15,
    acc_frac: int = 15,
    max_nonzeros: int = 4,
    scale: bool = True,
    scale_margin: float = 0.99,
    scaling_mode: str = "l1",
    accumulator_width: Optional[int] = None,
    form: str = "transposed",
) -> FilterDesign:
    """Quantize float coefficients and build the datapath in one step.

    With ``scale=True`` the coefficients are first normalized to unit L1
    norm (times ``scale_margin``) so the accumulation chain provably fits
    the output format — the conservative scaling discipline of Section 3.
    The margin leaves room for the one-sided truncation error the
    fixed-point shift operators accumulate (bounded by one output LSB per
    narrowing shift).  ``form`` selects the tap architecture:
    ``"transposed"`` (the reference) or ``"direct"``.
    """
    coefs = np.asarray(coefficients, dtype=np.float64)
    if scale:
        l1 = float(np.sum(np.abs(coefs)))
        if l1 <= 0:
            raise DesignError("cannot scale an all-zero coefficient vector")
        coefs = coefs * (scale_margin / l1)
    quantized = quantize_filter(coefs, frac=coef_frac, max_nonzeros=max_nonzeros)
    # Quantization can push the L1 norm back above 1; renormalize once if so.
    q_l1 = sum(abs(q.value) for q in quantized)
    if scale and q_l1 >= 1.0:
        coefs = coefs * (scale_margin / q_l1)
        quantized = quantize_filter(coefs, frac=coef_frac, max_nonzeros=max_nonzeros)
    plans = [plan_multiplier(q) for q in quantized]
    if form == "transposed":
        builder = build_transposed_fir
    elif form == "direct":
        builder = build_direct_fir
    else:
        raise DesignError(f"unknown FIR form {form!r}")
    return builder(
        plans, input_fmt=input_fmt, acc_frac=acc_frac, name=name,
        scaling_mode=scaling_mode, accumulator_width=accumulator_width,
    )
