"""Register-transfer-level datapath substrate: graphs, builders, scaling,
impulse-response analysis and the bit-accurate vectorized simulator."""

from .nodes import ARITHMETIC_KINDS, Node, OpKind
from .graph import Graph
from .impulse import NodeResponse, impulse_responses, subfilter_response
from .intervals import value_intervals
from .scaling import ScalingReport, assign_formats, redundant_sign_bits, width_for_bound
from .build import (
    FilterDesign,
    TapInfo,
    build_direct_fir,
    build_transposed_fir,
    design_from_coefficients,
)
from .carrysave import CarrySaveFir, CsaStage, carry_save_from_coefficients
from .serialize import design_from_dict, design_to_dict, load_design, save_design
from .simulate import InjectedFault, SimResult, node_waveform, simulate
from .vcd import save_vcd, sim_to_vcd

__all__ = [
    "OpKind",
    "Node",
    "ARITHMETIC_KINDS",
    "Graph",
    "NodeResponse",
    "impulse_responses",
    "subfilter_response",
    "value_intervals",
    "ScalingReport",
    "assign_formats",
    "redundant_sign_bits",
    "width_for_bound",
    "FilterDesign",
    "TapInfo",
    "build_transposed_fir",
    "build_direct_fir",
    "design_from_coefficients",
    "CarrySaveFir",
    "CsaStage",
    "carry_save_from_coefficients",
    "design_to_dict",
    "design_from_dict",
    "save_design",
    "load_design",
    "sim_to_vcd",
    "save_vcd",
    "InjectedFault",
    "SimResult",
    "simulate",
    "node_waveform",
]
