"""Design serialization: JSON round-trip for filter datapaths.

A design's structure (nodes, formats, taps, coefficients) is fully
deterministic data; serializing it lets experiments pin the exact
datapath they ran on, ship designs between tools, and diff design
revisions.  The JSON schema is versioned and strictly validated on load.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..csd import QuantizedCoefficient, csd_encode, plan_multiplier
from ..errors import DesignError
from ..fixedpoint import Fixed
from .build import FilterDesign, TapInfo
from .graph import Graph
from .nodes import OpKind
from .scaling import ScalingReport

__all__ = ["design_to_dict", "design_from_dict", "save_design", "load_design"]

_SCHEMA_VERSION = 1


def _fmt_to_list(fmt: Fixed) -> List[int]:
    return [fmt.width, fmt.frac]


def design_to_dict(design: FilterDesign) -> Dict:
    """A JSON-compatible snapshot of a design."""
    graph = design.graph
    return {
        "schema": _SCHEMA_VERSION,
        "name": design.name,
        "kind": design.kind,
        "input_fmt": _fmt_to_list(design.input_fmt),
        "acc_frac": design.acc_frac,
        "nodes": [
            {
                "kind": n.kind.value,
                "srcs": list(n.srcs),
                "fmt": _fmt_to_list(n.fmt),
                "shift": n.shift,
                "role": n.role,
                "tap": n.tap,
                "name": n.name,
            }
            for n in graph.nodes
        ],
        "taps": [
            {
                "index": t.index,
                "coefficient": {
                    "ideal": t.coefficient.ideal,
                    "raw": t.coefficient.raw,
                    "frac": t.coefficient.frac,
                },
                "accumulator": t.accumulator,
                "delay": t.delay,
                "operators": list(t.operators),
            }
            for t in design.taps
        ],
        "scaling": {
            "mode": design.scaling.mode,
            "frac": design.scaling.frac,
        },
    }


def design_from_dict(data: Dict) -> FilterDesign:
    """Rebuild a design from :func:`design_to_dict` output."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise DesignError(
            f"unsupported design schema {data.get('schema')!r}; "
            f"this build reads version {_SCHEMA_VERSION}"
        )
    graph = Graph(name=data["name"])
    for spec in data["nodes"]:
        try:
            kind = OpKind(spec["kind"])
        except ValueError:
            raise DesignError(f"unknown node kind {spec['kind']!r}") from None
        graph.add(
            kind,
            tuple(spec["srcs"]),
            fmt=Fixed(*spec["fmt"]),
            shift=spec["shift"],
            role=spec["role"],
            tap=spec["tap"],
            name=spec["name"],
        )
    graph.validate()

    taps: List[TapInfo] = []
    for t in data["taps"]:
        coef = QuantizedCoefficient(
            ideal=float(t["coefficient"]["ideal"]),
            raw=int(t["coefficient"]["raw"]),
            frac=int(t["coefficient"]["frac"]),
            digits=tuple(csd_encode(abs(int(t["coefficient"]["raw"])))),
        )
        taps.append(TapInfo(
            index=int(t["index"]),
            coefficient=coef,
            plan=plan_multiplier(coef),
            accumulator=t["accumulator"],
            delay=t["delay"],
            operators=list(t["operators"]),
        ))
    taps.sort(key=lambda t: t.index)

    design = FilterDesign(
        name=data["name"],
        graph=graph,
        taps=taps,
        scaling=ScalingReport(mode=data["scaling"]["mode"],
                              frac=data["scaling"]["frac"],
                              bounds={}, widths={}, iterations=0),
        input_fmt=Fixed(*data["input_fmt"]),
        acc_frac=int(data["acc_frac"]),
        kind=data.get("kind", "custom"),
    )
    # Scaling bounds are not serialized; recompute them so downstream
    # analyses (feasibility pruning) behave identically.
    from .impulse import impulse_responses

    responses = impulse_responses(graph)
    input_peak = max(abs(design.input_fmt.min_value),
                     design.input_fmt.max_value)
    design.scaling.bounds.update({
        nid: resp.magnitude_bound(input_peak)
        for nid, resp in responses.items()
    })
    design.scaling.widths.update({n.nid: n.fmt.width for n in graph.nodes})
    return design


def save_design(design: FilterDesign, path: str) -> None:
    """Write a design snapshot to a JSON file."""
    with open(path, "w") as fh:
        json.dump(design_to_dict(design), fh, indent=1)


def load_design(path: str) -> FilterDesign:
    """Read a design snapshot from a JSON file."""
    with open(path) as fh:
        return design_from_dict(json.load(fh))
