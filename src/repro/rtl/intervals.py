"""Exact raw-value interval analysis of a datapath graph.

Propagates ``[min, max]`` raw-integer bounds from the input through every
node.  Endpoints are exact for the chain-free paths (shifts are monotone,
so floor-division endpoints map exactly — e.g. a term ``x >> 15`` of a
12-bit input reaches exactly ``[-1, 0]``, never ``+1``); additions and
subtractions use interval arithmetic, which over-approximates when
operands are correlated.  Over-approximation is safe for the fault
feasibility analysis (it can only *keep* fault classes).

Intervals are expressed at each node's own binary point.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import DesignError
from .graph import Graph
from .nodes import OpKind

__all__ = ["value_intervals"]


def value_intervals(graph: Graph) -> Dict[int, Tuple[int, int]]:
    """Raw-value ``(min, max)`` per node id.

    Register reset state (0) is folded into DELAY intervals, and every
    interval is clipped to its node's representable range (wrap-free by
    scaling, but clipping keeps the analysis sound if callers pass
    unscaled graphs).
    """
    out: Dict[int, Tuple[int, int]] = {}
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.kind is OpKind.INPUT:
            iv = (node.fmt.min_raw, node.fmt.max_raw)
        elif node.kind is OpKind.CONST:
            iv = (0, 0)
        elif node.kind is OpKind.DELAY:
            lo, hi = out[node.srcs[0]]
            iv = (min(lo, 0), max(hi, 0))
        elif node.kind is OpKind.SHIFT:
            src = graph.node(node.srcs[0])
            lo, hi = out[node.srcs[0]]
            e = node.fmt.frac - src.fmt.frac - node.shift
            if e >= 0:
                iv = (lo << e, hi << e)
            else:
                iv = (lo >> -e, hi >> -e)  # arithmetic shift is monotone
        elif node.kind in (OpKind.ADD, OpKind.SUB):
            alo, ahi = out[node.srcs[0]]
            blo, bhi = out[node.srcs[1]]
            if node.kind is OpKind.ADD:
                iv = (alo + blo, ahi + bhi)
            else:
                iv = (alo - bhi, ahi - blo)
        elif node.kind is OpKind.OUTPUT:
            iv = out[node.srcs[0]]
        else:  # pragma: no cover - exhaustive over OpKind
            raise DesignError(f"unhandled node kind {node.kind}")
        if node.fmt is not None:
            iv = (max(iv[0], node.fmt.min_raw), min(iv[1], node.fmt.max_raw))
        out[nid] = iv
    return out
