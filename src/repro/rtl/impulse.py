"""Linear (impulse-response) analysis of a datapath graph.

Ignoring quantization, every node of an FIR datapath is a linear function
of the input, fully characterized by a finite impulse response ``h_k``.
The paper leans on this in two places:

* Eq. 1 — the variance at adder ``k`` under a white test source is
  ``sigma_x^2 * sum(h_k[i]**2)``;
* the scaling pass — the worst-case magnitude at a node is bounded by the
  L1 norm ``sum(|h_k[i]|)`` of its impulse response.

This module walks the graph once and returns the exact impulse response
of every node, plus a conservative bound on the truncation error that the
fixed-point implementation adds on top of the linear model (each
narrowing SHIFT floors its value, contributing up to one output LSB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import DesignError
from .graph import Graph
from .nodes import OpKind

__all__ = ["NodeResponse", "impulse_responses", "subfilter_response"]


@dataclass
class NodeResponse:
    """Linear model of one node.

    Attributes
    ----------
    h:
        Impulse response from the graph input, as a float array (index 0
        is the response at the same cycle the impulse is applied).
    truncation_bound:
        Upper bound, in engineering units, on the accumulated magnitude
        of fixed-point truncation errors at this node.
    """

    h: np.ndarray
    truncation_bound: float

    @property
    def l1(self) -> float:
        """Worst-case gain: max |y| over inputs bounded by 1."""
        return float(np.sum(np.abs(self.h)))

    @property
    def energy(self) -> float:
        """Sum of squared impulse-response samples (Eq. 1 kernel)."""
        return float(np.sum(self.h**2))

    def magnitude_bound(self, input_peak: float = 1.0) -> float:
        """Worst-case output magnitude including truncation effects."""
        return self.l1 * input_peak + self.truncation_bound


def _pad_to(h: np.ndarray, n: int) -> np.ndarray:
    if len(h) >= n:
        return h
    return np.concatenate([h, np.zeros(n - len(h))])


def impulse_responses(graph: Graph) -> Dict[int, NodeResponse]:
    """Impulse response and truncation bound for every node.

    Formats need not be assigned yet: a SHIFT node whose format is still
    unknown is assumed to truncate (conservative), using the binary point
    it will eventually receive only to bound the error — callers that run
    this *before* format assignment should treat ``truncation_bound`` as
    zero and re-run afterwards for exact bounds.
    """
    order = graph.topological_order()
    out: Dict[int, NodeResponse] = {}
    for nid in order:
        node = graph.node(nid)
        if node.kind is OpKind.INPUT:
            out[nid] = NodeResponse(h=np.array([1.0]), truncation_bound=0.0)
        elif node.kind is OpKind.CONST:
            out[nid] = NodeResponse(h=np.zeros(1), truncation_bound=0.0)
        elif node.kind is OpKind.DELAY:
            src = out[node.srcs[0]]
            out[nid] = NodeResponse(
                h=np.concatenate([[0.0], src.h]),
                truncation_bound=src.truncation_bound,
            )
        elif node.kind is OpKind.SHIFT:
            src = out[node.srcs[0]]
            scale = 2.0**-node.shift
            trunc = src.truncation_bound * scale
            if node.fmt is not None:
                src_node = graph.node(node.srcs[0])
                if src_node.fmt is not None:
                    # raw_out = raw_in * 2**e with e = frac_out - frac_in - shift
                    e = node.fmt.frac - src_node.fmt.frac - node.shift
                    if e < 0:
                        trunc += node.fmt.lsb  # floor() loses < 1 LSB
            out[nid] = NodeResponse(h=src.h * scale, truncation_bound=trunc)
        elif node.kind in (OpKind.ADD, OpKind.SUB):
            a = out[node.srcs[0]]
            b = out[node.srcs[1]]
            n = max(len(a.h), len(b.h))
            sign = 1.0 if node.kind is OpKind.ADD else -1.0
            out[nid] = NodeResponse(
                h=_pad_to(a.h, n) + sign * _pad_to(b.h, n),
                truncation_bound=a.truncation_bound + b.truncation_bound,
            )
        elif node.kind is OpKind.OUTPUT:
            src = out[node.srcs[0]]
            out[nid] = NodeResponse(h=src.h.copy(),
                                    truncation_bound=src.truncation_bound)
        else:  # pragma: no cover - exhaustive over OpKind
            raise DesignError(f"unhandled node kind {node.kind}")
    return out


def subfilter_response(graph: Graph, nid: int) -> np.ndarray:
    """Impulse response of the subfilter that outputs at node ``nid``.

    Convenience wrapper for analyses that only need one node (e.g. the
    tap-20 studies of Section 7); trims trailing zeros.
    """
    h = impulse_responses(graph)[nid].h
    nz = np.nonzero(np.abs(h) > 0)[0]
    if len(nz) == 0:
        return np.zeros(1)
    return h[: nz[-1] + 1]
