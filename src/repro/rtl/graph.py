"""Dataflow graph container for filter datapaths.

The graph is a DAG over :class:`~repro.rtl.nodes.Node` objects.  Because
the filters reproduced here are non-recursive (FIR), *no* cycles are
permitted, not even through registers; this lets the simulator evaluate
each node over the whole time axis at once with vectorized numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import DesignError
from ..fixedpoint import Fixed
from .nodes import Node, OpKind

__all__ = ["Graph"]

_SRC_ARITY = {
    OpKind.INPUT: 0,
    OpKind.CONST: 0,
    OpKind.DELAY: 1,
    OpKind.SHIFT: 1,
    OpKind.ADD: 2,
    OpKind.SUB: 2,
    OpKind.OUTPUT: 1,
}


@dataclass
class Graph:
    """A filter datapath as a DAG of RTL nodes."""

    name: str = "design"
    nodes: List[Node] = field(default_factory=list)
    input_id: Optional[int] = None
    output_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        kind: OpKind,
        srcs: Tuple[int, ...] = (),
        fmt: Optional[Fixed] = None,
        shift: int = 0,
        role: str = "",
        tap: Optional[int] = None,
        name: str = "",
    ) -> Node:
        """Append a node and return it; records input/output ports."""
        if len(srcs) != _SRC_ARITY[kind]:
            raise DesignError(
                f"{kind.value} takes {_SRC_ARITY[kind]} sources, got {len(srcs)}"
            )
        for s in srcs:
            if not 0 <= s < len(self.nodes):
                raise DesignError(f"source id {s} does not exist yet")
        node = Node(
            nid=len(self.nodes), kind=kind, srcs=tuple(srcs), fmt=fmt,
            shift=shift, role=role, tap=tap, name=name,
        )
        self.nodes.append(node)
        if kind is OpKind.INPUT:
            if self.input_id is not None:
                raise DesignError("graph already has an input")
            self.input_id = node.nid
        if kind is OpKind.OUTPUT:
            if self.output_id is not None:
                raise DesignError("graph already has an output")
            self.output_id = node.nid
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, nid: int) -> Node:
        """Node by id."""
        return self.nodes[nid]

    @property
    def input_node(self) -> Node:
        if self.input_id is None:
            raise DesignError("graph has no input node")
        return self.nodes[self.input_id]

    @property
    def output_node(self) -> Node:
        if self.output_id is None:
            raise DesignError("graph has no output node")
        return self.nodes[self.output_id]

    @property
    def arithmetic_nodes(self) -> List[Node]:
        """All adders and subtractors, in id order."""
        return [n for n in self.nodes if n.is_arithmetic]

    @property
    def register_count(self) -> int:
        """Number of DELAY elements."""
        return sum(1 for n in self.nodes if n.kind is OpKind.DELAY)

    def consumers(self) -> List[List[int]]:
        """For each node id, the ids of nodes that read it."""
        out: List[List[int]] = [[] for _ in self.nodes]
        for n in self.nodes:
            for s in n.srcs:
                out[s].append(n.nid)
        return out

    def topological_order(self) -> List[int]:
        """Kahn topological order; raises on cycles.

        Nodes are appended in construction order by the builders, which is
        already topological, but validation must not rely on that.
        """
        indeg = [len(n.srcs) for n in self.nodes]
        consumers = self.consumers()
        ready = [n.nid for n in self.nodes if indeg[n.nid] == 0]
        order: List[int] = []
        while ready:
            nid = ready.pop()
            order.append(nid)
            for c in consumers[nid]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self.nodes):
            raise DesignError(
                "graph contains a cycle; only non-recursive (FIR) datapaths "
                "are supported"
            )
        return order

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural and format consistency; raises DesignError."""
        if self.input_id is None or self.output_id is None:
            raise DesignError("graph needs exactly one input and one output")
        self.topological_order()
        for n in self.nodes:
            if n.fmt is None:
                raise DesignError(f"node {n} has no format assigned")
            if n.kind is OpKind.DELAY:
                src = self.nodes[n.srcs[0]]
                if src.fmt != n.fmt:
                    raise DesignError(
                        f"register {n} must match source format {src.fmt}"
                    )
            if n.is_arithmetic:
                a, b = (self.nodes[s] for s in n.srcs)
                if a.fmt.frac != n.fmt.frac or b.fmt.frac != n.fmt.frac:
                    raise DesignError(
                        f"operands of {n} must share its binary point "
                        f"({a.fmt}, {b.fmt} vs {n.fmt})"
                    )
                # NOTE: an operand may be *wider* than the result.  When
                # range analysis proves the outcome fits fewer bits (e.g.
                # a CSD partial like x>>1 - x>>4), the upper cells are
                # redundant sign logic and are simply not instantiated —
                # the "redundant operator elimination" of the paper's
                # refs [2,3].  Evaluation wraps to the result width, which
                # is exact because the true value provably fits.
                if n.fmt.width < 2:
                    raise DesignError(f"adder {n} must be at least 2 bits wide")
            if n.kind is OpKind.OUTPUT:
                src = self.nodes[n.srcs[0]]
                if src.fmt != n.fmt:
                    raise DesignError("output port must match source format")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Operator census used by the Table 1 reproduction."""
        counts: Dict[str, int] = {}
        for n in self.nodes:
            counts[n.kind.value] = counts.get(n.kind.value, 0) + 1
        counts["arithmetic"] = counts.get("add", 0) + counts.get("sub", 0)
        return counts

    def describe(self) -> str:
        """Multi-line human-readable dump."""
        lines = [f"graph {self.name}: {len(self.nodes)} nodes"]
        lines.extend(f"  {n}" for n in self.nodes)
        return "\n".join(lines)

    def __iter__(self) -> Iterable[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)
