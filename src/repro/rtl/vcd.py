"""VCD (Value Change Dump) export of datapath simulations.

Dumps selected node waveforms from a :class:`~repro.rtl.simulate.SimResult`
in the standard IEEE-1364 VCD format, so the Python model's internal
signals can be eyeballed in GTKWave or diffed against an HDL simulation
of the exported Verilog.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError
from .simulate import SimResult

__all__ = ["sim_to_vcd", "save_vcd"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier code for the n-th signal."""
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out = _ID_CHARS[rem] + out
    return out


def _binary(raw: int, width: int) -> str:
    return format(raw & ((1 << width) - 1), f"0{width}b")


def sim_to_vcd(
    result: SimResult,
    node_ids: Optional[Iterable[int]] = None,
    timescale: str = "1 ns",
) -> str:
    """Render retained node waveforms as VCD text.

    ``node_ids`` defaults to every retained node.  Each node becomes a
    vector variable named after its RTL label.
    """
    graph = result.graph
    ids = list(node_ids) if node_ids is not None else sorted(result.values)
    if not ids:
        raise SimulationError("no nodes to dump")
    for nid in ids:
        if nid not in result.values:
            raise SimulationError(
                f"node {nid} was not retained by the simulation"
            )

    lines: List[str] = []
    lines.append("$date repro simulation dump $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append("$scope module datapath $end")
    codes: Dict[int, str] = {}
    for i, nid in enumerate(ids):
        node = graph.node(nid)
        codes[nid] = _identifier(i)
        label = node.name or f"n{nid}"
        label = label.replace(" ", "_")
        lines.append(f"$var wire {node.fmt.width} {codes[nid]} {label} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    lines.append("#0")
    lines.append("$dumpvars")
    previous: Dict[int, int] = {}
    for nid in ids:
        raw = int(result.values[nid][0])
        width = graph.node(nid).fmt.width
        lines.append(f"b{_binary(raw, width)} {codes[nid]}")
        previous[nid] = raw
    lines.append("$end")

    for t in range(1, result.length):
        emitted_time = False
        for nid in ids:
            raw = int(result.values[nid][t])
            if raw == previous[nid]:
                continue
            if not emitted_time:
                lines.append(f"#{t}")
                emitted_time = True
            width = graph.node(nid).fmt.width
            lines.append(f"b{_binary(raw, width)} {codes[nid]}")
            previous[nid] = raw
    lines.append(f"#{result.length}")
    return "\n".join(lines) + "\n"


def save_vcd(result: SimResult, path: str,
             node_ids: Optional[Iterable[int]] = None) -> None:
    """Write a VCD dump to a file."""
    with open(path, "w") as fh:
        fh.write(sim_to_vcd(result, node_ids=node_ids))
