"""Width assignment via scaling analysis.

"The use of scaling techniques to identify and remove redundant sign bits
is the first step towards obtaining a testable design" (Section 3).  This
pass sizes every node of the datapath from the L1 norm of its impulse
response — the classical worst-case (conservative) scaling bound — or,
optionally, from a statistical bound (Section 9's "more aggressive
scaling techniques").

Two knobs model the design styles discussed in the paper:

* ``mode="l1"`` (default): no overflow is possible for any input; upper
  accumulator bits that the input statistics rarely exercise become the
  *excess headroom* that makes tests T1/T6 hard to apply.
* ``mode="statistical"``: widths sized to ``sigma_multiplier`` standard
  deviations of the white-noise response (never above the L1 bound),
  trading occasional overflow for testability.
* ``accumulator_width``: forces a uniform width on the accumulation
  chain, modeling designs with a uniform output datapath (the Table 1
  designs use 16 bits); must be at least the computed requirement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import DesignError
from ..fixedpoint import Fixed
from .graph import Graph
from .impulse import NodeResponse, impulse_responses
from .nodes import OpKind

__all__ = ["ScalingReport", "assign_formats", "width_for_bound", "redundant_sign_bits"]

_MIN_WIDTH = 2


def width_for_bound(bound: float, frac: int) -> int:
    """Smallest width whose positive raw range covers ``bound``.

    ``bound`` is an engineering-unit magnitude bound; the returned width
    satisfies ``2**(width-1) - 1 >= ceil(bound * 2**frac)``.
    """
    if bound < 0:
        raise DesignError(f"negative magnitude bound {bound}")
    bound_raw = int(math.ceil(bound * (1 << frac) - 1e-9))
    if bound_raw <= 0:
        return _MIN_WIDTH
    # Need 2**(w-1) - 1 >= bound_raw, i.e. w = 1 + ceil(log2(bound_raw + 1)),
    # and ceil(log2(n + 1)) == n.bit_length() for n >= 1.
    return max(1 + bound_raw.bit_length(), _MIN_WIDTH)


@dataclass
class ScalingReport:
    """Outcome of a scaling pass."""

    mode: str
    frac: int
    bounds: Dict[int, float]
    widths: Dict[int, int]
    iterations: int

    def headroom_bits(self, graph: Graph) -> Dict[int, int]:
        """Per-node count of upper bits beyond the L1 requirement."""
        return redundant_sign_bits(graph)


def _target_bound(resp: NodeResponse, mode: str, sigma_multiplier: float,
                  input_sigma: float, input_peak: float) -> float:
    l1_bound = resp.magnitude_bound(input_peak)
    if mode == "l1":
        return l1_bound
    if mode == "statistical":
        sigma = math.sqrt(resp.energy) * input_sigma
        return min(l1_bound, sigma_multiplier * sigma + resp.truncation_bound)
    raise DesignError(f"unknown scaling mode {mode!r}")


def assign_formats(
    graph: Graph,
    frac: int,
    mode: str = "l1",
    sigma_multiplier: float = 4.0,
    input_sigma: float = 1.0 / math.sqrt(3.0),
    accumulator_width: Optional[int] = None,
    max_iterations: int = 8,
) -> ScalingReport:
    """Assign a :class:`Fixed` format to every node of ``graph`` in place.

    The input node must already carry its format.  All other nodes receive
    binary point ``frac``; widths come from the scaling bound.  Because
    truncation error bounds depend on the assigned formats, the pass
    iterates to a fixed point (widths only ever grow, so it terminates).
    """
    input_fmt = graph.input_node.fmt
    if input_fmt is None:
        raise DesignError("input node must carry a format before scaling")
    # Engineering input peak: |x| <= max(|min|, max) in engineering units.
    input_peak = max(abs(input_fmt.min_value), input_fmt.max_value)
    input_sigma_eng = input_sigma * input_fmt.half_scale

    order = graph.topological_order()
    widths: Dict[int, int] = {}
    bounds: Dict[int, float] = {}
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        responses = impulse_responses(graph)
        changed = False
        for nid in order:
            node = graph.node(nid)
            if node.kind is OpKind.INPUT:
                bounds[nid] = input_peak
                widths[nid] = node.fmt.width
                continue
            resp = responses[nid]
            if node.kind in (OpKind.DELAY, OpKind.OUTPUT):
                src = graph.node(node.srcs[0])
                fmt = src.fmt
                bounds[nid] = bounds[node.srcs[0]]
            elif node.kind is OpKind.CONST:
                bounds[nid] = 0.0
                fmt = Fixed(_MIN_WIDTH, frac)
            else:
                bound = _target_bound(resp, mode, sigma_multiplier,
                                      input_sigma_eng, input_peak)
                bounds[nid] = bound
                width = width_for_bound(bound, frac)
                if node.role == "accumulator" and accumulator_width is not None:
                    if accumulator_width < width:
                        raise DesignError(
                            f"accumulator_width={accumulator_width} below the "
                            f"scaling requirement {width} at node {node}"
                        )
                    width = accumulator_width
                if node.fmt is not None and node.fmt.frac == frac:
                    # Widths never shrink across iterations, so the loop
                    # converges even as truncation bounds grow.
                    width = max(width, node.fmt.width)
                fmt = Fixed(width, frac)
            if node.fmt != fmt:
                node.fmt = fmt
                changed = True
            widths[nid] = node.fmt.width
        if not changed:
            break
    graph.validate()
    return ScalingReport(mode=mode, frac=frac, bounds=bounds, widths=widths,
                         iterations=iterations)


def redundant_sign_bits(graph: Graph) -> Dict[int, int]:
    """Upper bits of each arithmetic node that worst-case analysis proves
    can never differ from the sign bit.

    A positive count flags the *excess headroom* test problem of
    Section 4: those bits (and the carry logic feeding them) cannot be
    exercised by any in-range input.
    """
    responses = impulse_responses(graph)
    input_fmt = graph.input_node.fmt
    input_peak = max(abs(input_fmt.min_value), input_fmt.max_value)
    out: Dict[int, int] = {}
    for node in graph.arithmetic_nodes:
        required = width_for_bound(
            responses[node.nid].magnitude_bound(input_peak), node.fmt.frac
        )
        out[node.nid] = max(0, node.fmt.width - required)
    return out
