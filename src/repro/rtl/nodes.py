"""Register-transfer-level node types.

The paper's filters are "networks of registers, adders, subtractors,
fixed-shift, and sign-extension operators" (Section 3).  Those are exactly
the node kinds modeled here:

``INPUT``
    The filter's primary input port.
``CONST``
    A constant source (only 0 is currently used, to realize a leading
    negation as a subtraction from zero).
``DELAY``
    A register: output is the input delayed by one sample, reset to 0.
``SHIFT``
    A fixed arithmetic shift combined with a format change.  With
    ``shift == 0`` this is a pure sign-extension (widening) or truncation
    (narrowing) operator — just wiring in hardware, so it contributes no
    faults.
``ADD`` / ``SUB``
    Ripple-carry adders and subtractors.  Operand 0 is the *primary*
    (high-variance) input and operand 1 the *secondary* input, matching
    the paper's ``A``/``B`` convention of Table 2.
``OUTPUT``
    The filter's primary output port (an alias of its source).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..fixedpoint import Fixed

__all__ = ["OpKind", "Node", "ARITHMETIC_KINDS"]


class OpKind(enum.Enum):
    """RTL operator kinds."""

    INPUT = "input"
    CONST = "const"
    DELAY = "delay"
    SHIFT = "shift"
    ADD = "add"
    SUB = "sub"
    OUTPUT = "output"


#: Kinds that instantiate ripple-carry cells and therefore carry faults.
ARITHMETIC_KINDS = (OpKind.ADD, OpKind.SUB)


@dataclass
class Node:
    """One RTL operator.

    Attributes
    ----------
    nid:
        Integer id, equal to the node's index in ``Graph.nodes``.
    kind:
        The operator kind.
    srcs:
        Ids of source nodes.  ``ADD``/``SUB`` have exactly two sources,
        ``(primary, secondary)``; ``DELAY``/``SHIFT``/``OUTPUT`` have one;
        ``INPUT``/``CONST`` have none.
    fmt:
        Output fixed-point format.  May be ``None`` while the graph is
        under construction; the scaling pass assigns final formats.
    shift:
        For ``SHIFT`` nodes, the right-shift amount applied to the
        engineering value (``y = x * 2**-shift``).
    role:
        Structural annotation used by analyses and reports: one of
        ``input``, ``term``, ``csd_partial``, ``product``, ``accumulator``,
        ``delay``, ``const``, ``output``.
    tap:
        Tap index this node belongs to, when applicable.
    name:
        Human-readable label for reports.
    """

    nid: int
    kind: OpKind
    srcs: Tuple[int, ...] = ()
    fmt: Optional[Fixed] = None
    shift: int = 0
    role: str = ""
    tap: Optional[int] = None
    name: str = field(default="")

    @property
    def is_arithmetic(self) -> bool:
        """True for fault-bearing adders and subtractors."""
        return self.kind in ARITHMETIC_KINDS

    @property
    def width(self) -> int:
        """Output width in bits (format must be assigned)."""
        if self.fmt is None:
            raise ValueError(f"node {self.nid} ({self.name}) has no format yet")
        return self.fmt.width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fmt = str(self.fmt) if self.fmt is not None else "Q(?)"
        return f"#{self.nid} {self.kind.value} {fmt} {self.name}"
