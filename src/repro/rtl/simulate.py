"""Bit-accurate vectorized simulation of filter datapaths.

The simulator evaluates each node over the *entire* time axis at once
(possible because the supported graphs are non-recursive), so a 4k-vector
BIST run over a ~600-node design is a few hundred numpy operations.

Three capabilities matter to the reproduction:

* plain fault-free simulation (waveforms, signatures, statistics);
* an ``adder_hook`` callback giving every ripple-carry operator's aligned
  operand words — the fast fault-coverage engine derives full-adder input
  patterns from these;
* single-fault injection: one full-adder cell of one operator is replaced
  by a faulty behaviour table, and the operator is re-evaluated ripple by
  ripple.  This is how Figure 2's "serious missed fault" experiment runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..telemetry import get_telemetry
from .graph import Graph
from .nodes import Node, OpKind

__all__ = ["InjectedFault", "SimResult", "simulate", "node_waveform"]

#: Signature of the per-operator callback: (node, primary_raw, secondary_raw).
#: Operands are aligned to the node's binary point but NOT inverted for
#: subtractors; the callee applies the cell-level view it needs.
AdderHook = Callable[[Node, np.ndarray, np.ndarray], None]


@dataclass(frozen=True)
class InjectedFault:
    """A faulty full-adder cell.

    ``sum_lut`` and ``cout_lut`` are length-8 uint8 arrays giving the
    faulty cell's outputs for each input code ``(a << 2) | (b << 1) | c``,
    where ``a``/``b``/``c`` are the bits physically present on the cell
    (for a subtractor, ``b`` is the already-inverted secondary bit).
    """

    node_id: int
    bit: int
    sum_lut: np.ndarray
    cout_lut: np.ndarray
    label: str = ""


@dataclass
class SimResult:
    """Raw waveforms of the nodes retained by a simulation run."""

    graph: Graph
    length: int
    values: Dict[int, np.ndarray]

    def raw(self, nid: int) -> np.ndarray:
        """Raw integer waveform of node ``nid`` (must have been retained)."""
        if nid not in self.values:
            raise SimulationError(
                f"node {nid} was not retained; pass it in keep_nodes"
            )
        return self.values[nid]

    def engineering(self, nid: int) -> np.ndarray:
        """Waveform in engineering units."""
        return self.graph.node(nid).fmt.to_float(self.raw(nid))

    def normalized(self, nid: int) -> np.ndarray:
        """Waveform normalized to [-1, 1) — the paper's convention."""
        return self.graph.node(nid).fmt.normalize(self.raw(nid))

    @property
    def output(self) -> np.ndarray:
        """Normalized output waveform."""
        return self.normalized(self.graph.output_id)


def _align(raw: np.ndarray, src_fmt, dst_fmt) -> np.ndarray:
    """Re-express ``raw`` at ``dst_fmt``'s binary point (exact: fracs match)."""
    if src_fmt.frac != dst_fmt.frac:
        raise SimulationError(
            f"operand binary points differ ({src_fmt} vs {dst_fmt}); the "
            "builder should have inserted a SHIFT"
        )
    return raw


def _eval_shift(raw: np.ndarray, node: Node, src: Node) -> np.ndarray:
    e = node.fmt.frac - src.fmt.frac - node.shift
    if e >= 0:
        shifted = raw << e
    else:
        shifted = raw >> -e  # arithmetic shift: floor, like hardware truncation
    return node.fmt.wrap(shifted)


def _eval_faulty_adder(
    a: np.ndarray, b: np.ndarray, node: Node, fault: InjectedFault
) -> np.ndarray:
    """Ripple-by-ripple evaluation with one faulty cell."""
    width = node.fmt.width
    if not 0 <= fault.bit < width:
        raise SimulationError(
            f"fault bit {fault.bit} outside {width}-bit operator {node.nid}"
        )
    invert_b = node.kind is OpKind.SUB
    bb = ~b if invert_b else b
    carry = np.full(a.shape, 1 if invert_b else 0, dtype=np.int64)
    total = np.zeros_like(a)
    sum_lut = fault.sum_lut.astype(np.int64)
    cout_lut = fault.cout_lut.astype(np.int64)
    for k in range(width):
        ak = (a >> k) & 1
        bk = (bb >> k) & 1
        if k == fault.bit:
            code = (ak << 2) | (bk << 1) | carry
            s = sum_lut[code]
            carry = cout_lut[code]
        else:
            s = ak ^ bk ^ carry
            carry = (ak & bk) | (carry & (ak ^ bk))
        total = total | (s << k)
    # Interpret the width-bit pattern as two's complement.
    return node.fmt.wrap(total)


def simulate(
    graph: Graph,
    input_raw: Sequence[int],
    keep_nodes: Optional[Iterable[int]] = None,
    adder_hook: Optional[AdderHook] = None,
    fault: Optional[InjectedFault] = None,
) -> SimResult:
    """Run the datapath over ``input_raw`` (raw integers, input format).

    Parameters
    ----------
    keep_nodes:
        Node ids whose waveforms should be retained in the result.  The
        output node is always retained.  Everything else is freed as soon
        as its last consumer has been evaluated, keeping memory linear in
        the retained set rather than the graph size.
    adder_hook:
        Called for every ADD/SUB node with the aligned operand words.
    fault:
        Optional single injected full-adder fault.
    """
    graph.validate()
    input_node = graph.input_node
    raw = np.asarray(input_raw, dtype=np.int64)
    if raw.ndim != 1:
        raise SimulationError("input must be a 1-D sequence of raw integers")
    if not input_node.fmt.contains(raw):
        raise SimulationError("input samples exceed the input format range")
    length = len(raw)

    keep = set(keep_nodes or ())
    keep.add(graph.output_id)
    if graph.input_id in keep:
        pass
    remaining = [len(c) for c in graph.consumers()]
    order = graph.topological_order()
    live: Dict[int, np.ndarray] = {}
    kept: Dict[int, np.ndarray] = {}

    def retire(nid: int) -> None:
        remaining[nid] -= 1
        if remaining[nid] <= 0 and nid not in keep:
            live.pop(nid, None)

    tel = get_telemetry()
    timed = tel.enabled
    kind_seconds: Dict[OpKind, float] = {}
    with tel.span("rtl.simulate", nodes=len(order), vectors=length):
        for nid in order:
            if timed:
                t0 = time.perf_counter()
            node = graph.node(nid)
            if node.kind is OpKind.INPUT:
                value = raw
            elif node.kind is OpKind.CONST:
                value = np.zeros(length, dtype=np.int64)
            elif node.kind is OpKind.DELAY:
                src = live[node.srcs[0]]
                value = np.empty_like(src)
                value[0] = 0
                value[1:] = src[:-1]
                retire(node.srcs[0])
            elif node.kind is OpKind.SHIFT:
                value = _eval_shift(live[node.srcs[0]], node, graph.node(node.srcs[0]))
                retire(node.srcs[0])
            elif node.kind in (OpKind.ADD, OpKind.SUB):
                a = _align(live[node.srcs[0]], graph.node(node.srcs[0]).fmt, node.fmt)
                b = _align(live[node.srcs[1]], graph.node(node.srcs[1]).fmt, node.fmt)
                if adder_hook is not None:
                    adder_hook(node, a, b)
                if fault is not None and fault.node_id == nid:
                    value = _eval_faulty_adder(a, b, node, fault)
                elif node.kind is OpKind.ADD:
                    value = node.fmt.wrap(a + b)
                else:
                    value = node.fmt.wrap(a - b)
                retire(node.srcs[0])
                retire(node.srcs[1])
            elif node.kind is OpKind.OUTPUT:
                value = live[node.srcs[0]]
                retire(node.srcs[0])
            else:  # pragma: no cover - exhaustive over OpKind
                raise SimulationError(f"unhandled node kind {node.kind}")
            live[nid] = value
            if nid in keep:
                kept[nid] = value
            if timed:
                kind = node.kind
                kind_seconds[kind] = (kind_seconds.get(kind, 0.0)
                                      + time.perf_counter() - t0)
    if timed:
        tel.counter("rtl.simulations").add(1)
        tel.counter("rtl.node_evals").add(len(order))
        tel.counter("rtl.node_cycles").add(len(order) * length)
        for kind, seconds in kind_seconds.items():
            tel.counter(f"rtl.kind.{kind.name.lower()}.seconds").add(seconds)
    return SimResult(graph=graph, length=length, values=kept)


def node_waveform(graph: Graph, input_raw: Sequence[int], nid: int,
                  fault: Optional[InjectedFault] = None) -> np.ndarray:
    """Normalized waveform of one node — convenience for the figures."""
    result = simulate(graph, input_raw, keep_nodes=[nid], fault=fault)
    return result.normalized(nid)
