"""Carry-save accumulation architecture.

Section 3 of the paper: "Carry-save adder arrays are a higher-performance
alternative that come at the cost of doubling the number of registers in
the design ... the analysis is more complex in the case of carry-save
arrays".  This module provides that alternative so the testability
comparison can actually be run (see ``benchmarks/bench_ablation_arch.py``).

The accumulation chain keeps the running sum as a redundant pair
``(S, C)`` with value ``S + C (mod 2**W)``.  Each CSD digit folds in via
one rank of 3:2 compressors (full adders, one per bit, *no carry ripple*)::

    S' = S xor C xor T~
    C' = (majority(S, C, T~) << 1) | inject

where ``T~`` is the (possibly complemented) shifted input copy and
``inject`` carries the +1 of a two's-complement subtraction into the
freed LSB carry slot.  Both vectors are registered between taps — twice
the register bits of the ripple-carry chain — and a final ripple-carry
*vector-merge* adder resolves ``y = S + C``.

Every compressor bit cell is a full adder, so the cell-level fault
dictionary of :mod:`repro.gates.cells` applies unchanged; the top cell's
carry-out is architecturally dropped (the ``msb`` variant), and unlike the
ripple chain the bit-0 cell has *three* live inputs (``full`` variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..csd import MultiplierPlan, plan_multiplier, quantize_filter
from ..errors import DesignError, SimulationError
from ..fixedpoint import Fixed, cell_pattern_codes, wrap
from .build import design_from_coefficients  # noqa: F401  (doc cross-ref)

__all__ = ["CsaStage", "CarrySaveFir", "carry_save_from_coefficients"]

#: Observer signature: (stage_id, codes) with codes shaped (width, T).
StageObserver = Callable[[int, np.ndarray], None]


@dataclass(frozen=True)
class CsaStage:
    """One 3:2 compressor rank: folds one CSD digit into the chain.

    ``delays_before`` is the number of (S, C) register pairs the chain
    passes through before this digit folds in: 1 at each tap boundary,
    more when zero-coefficient taps contribute registers but no
    compressor rank.
    """

    stage_id: int
    tap: int
    shift: int
    subtract: bool
    delays_before: int


@dataclass
class CarrySaveFir:
    """A carry-save transposed-form FIR accumulation chain."""

    name: str
    input_fmt: Fixed
    fmt: Fixed  # uniform (S, C) vector format
    coefficients: np.ndarray
    stages: List[CsaStage]
    #: Register pairs between the last compressor rank and the merger.
    trailing_delays: int = 0

    #: Stage id reserved for the final vector-merge ripple adder.
    MERGE_ID = -1

    @property
    def register_pairs(self) -> int:
        """(S, C) register pairs along the chain."""
        return (sum(s.delays_before for s in self.stages)
                + self.trailing_delays)

    @property
    def register_bits(self) -> int:
        """Total register bits — twice the ripple-carry chain's."""
        return 2 * self.fmt.width * self.register_pairs

    @property
    def compressor_count(self) -> int:
        return len(self.stages)

    @property
    def operator_count(self) -> int:
        """Compressor ranks plus the vector-merge adder."""
        return len(self.stages) + 1

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        input_raw: Sequence[int],
        observer: Optional[StageObserver] = None,
        keep_stages: bool = False,
    ) -> Dict[str, object]:
        """Bit-true simulation over a whole input sequence.

        Returns ``{"output": raw output, "stages": {...}}``; the observer
        receives each compressor rank's per-cell input codes (ordered
        ``a = S``, ``b = C``, ``c = T~``) and finally the merge adder's
        ripple codes under ``MERGE_ID``.
        """
        raw = np.asarray(input_raw, dtype=np.int64)
        if raw.ndim != 1:
            raise SimulationError("input must be a 1-D sequence")
        if not self.input_fmt.contains(raw):
            raise SimulationError("input exceeds the input format range")
        width = self.fmt.width
        e_base = self.fmt.frac - self.input_fmt.frac
        length = len(raw)
        s = np.zeros(length, dtype=np.int64)
        c = np.zeros(length, dtype=np.int64)
        kept: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for stage in self.stages:
            for _ in range(stage.delays_before):
                s = _delay(s)
                c = _delay(c)
            e = e_base - stage.shift
            term = (raw << e) if e >= 0 else (raw >> -e)
            term = self.fmt.wrap(term)
            if stage.subtract:
                term = ~term
            if observer is not None:
                codes = _csa_codes(s, c, term, width)
                observer(stage.stage_id, codes)
            s, c = _compress(s, c, term, width,
                             inject=1 if stage.subtract else 0)
            if keep_stages:
                kept[stage.stage_id] = (s, c)
        for _ in range(self.trailing_delays):
            s = _delay(s)
            c = _delay(c)
        if observer is not None:
            merge_codes = cell_pattern_codes(s, c, 0, width)
            observer(self.MERGE_ID, merge_codes)
        output = self.fmt.wrap(s + c)
        result: Dict[str, object] = {"output": output}
        if keep_stages:
            result["stages"] = kept
        return result

    def value_after_stage(self, stage_id: int, input_raw) -> np.ndarray:
        """Normalized represented value S+C after one stage (analysis aid)."""
        sim = self.simulate(input_raw, keep_stages=True)
        s, c = sim["stages"][stage_id]
        return self.fmt.normalize(self.fmt.wrap(s + c))


def _delay(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    out[0] = 0
    out[1:] = x[:-1]
    return out


def _compress(s, c, t, width: int, inject: int) -> Tuple[np.ndarray, np.ndarray]:
    """One 3:2 compressor rank on W-bit two's-complement words."""
    new_s = wrap(s ^ c ^ t, width)
    carries = (s & c) | (t & (s ^ c))
    new_c = wrap((carries << 1) | inject, width)
    return new_s, new_c


def _csa_codes(s, c, t, width: int) -> np.ndarray:
    """Per-cell input codes of a compressor rank: a=S, b=C, cin=T~."""
    ks = np.arange(width).reshape(-1, 1)
    s_bits = (s[None, :] >> ks) & 1
    c_bits = (c[None, :] >> ks) & 1
    t_bits = (t[None, :] >> ks) & 1
    return ((s_bits << 2) | (c_bits << 1) | t_bits).astype(np.uint8)


def carry_save_from_coefficients(
    coefficients: Sequence[float],
    name: str = "csa-fir",
    input_fmt: Fixed = Fixed(12, 11),
    acc_frac: int = 15,
    width: int = 16,
    coef_frac: int = 15,
    max_nonzeros: int = 4,
    scale: bool = True,
    scale_margin: float = 0.99,
) -> CarrySaveFir:
    """Quantize coefficients and build the carry-save chain.

    Mirrors :func:`repro.rtl.build.design_from_coefficients` so ripple
    and carry-save realizations of the *same* filter can be compared.
    """
    coefs = np.asarray(coefficients, dtype=np.float64)
    if scale:
        l1 = float(np.sum(np.abs(coefs)))
        if l1 <= 0:
            raise DesignError("cannot scale an all-zero coefficient vector")
        coefs = coefs * (scale_margin / l1)
    quantized = quantize_filter(coefs, frac=coef_frac,
                                max_nonzeros=max_nonzeros)
    plans: List[MultiplierPlan] = [plan_multiplier(q) for q in quantized]
    if all(p.is_zero for p in plans):
        raise DesignError("all coefficients are zero")

    stages: List[CsaStage] = []
    stage_id = 0
    m = len(plans)
    pending = 0  # register pairs owed since the last compressor rank
    started = False  # chain is identically zero until the first rank
    for k in range(m - 1, -1, -1):  # far end of the chain first
        plan = plans[k]
        sign = -1 if plan.negate else 1
        for term in plan.terms:
            stages.append(CsaStage(
                stage_id=stage_id, tap=k, shift=term.shift,
                subtract=(sign * term.sign) < 0,
                delays_before=pending if started else 0,
            ))
            pending = 0
            started = True
            stage_id += 1
        if k != 0:
            pending += 1  # the tap-boundary register pair
    return CarrySaveFir(
        name=name,
        input_fmt=input_fmt,
        fmt=Fixed(width, acc_frac),
        coefficients=np.array([q.value for q in quantized]),
        stages=stages,
        trailing_delays=pending,
    )
