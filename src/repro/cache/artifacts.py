"""Encoders/decoders between pipeline artifacts and npz-able arrays.

Four artifact kinds flow through the store (plus the design documents
the sweep workers rehydrate from):

``universe``
    A :class:`~repro.faultsim.dictionary.FaultUniverse`.  Cells carry
    their operator width and add/sub polarity so faults rebuild through
    :func:`~repro.gates.cells.variant_for_bit` — the decoded universe is
    object-identical in content to a fresh
    :func:`~repro.faultsim.dictionary.build_fault_universe` run, without
    re-running the structural-feasibility analysis.
``netlist``
    A flat :class:`~repro.gates.netlist.GateNetlist` (elaboration
    output), numeric bulk as arrays and the fault-site map as JSON.
``golden``
    A fault-free output waveform (one ``int64`` array).
``coverage``
    A :class:`~repro.faultsim.engine.CoverageResult`'s per-fault
    detection times; rehydration reattaches a universe.
``design``
    A :class:`~repro.rtl.build.FilterDesign` via the JSON document of
    :mod:`repro.rtl.serialize`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..errors import CacheError
from ..faultsim.dictionary import DesignFault, FaultUniverse
from ..gates.cells import variant_for_bit
from ..gates.netlist import Dff, Gate, GateNetlist, GateRef
from ..rtl.nodes import OpKind

__all__ = [
    "encode_universe", "decode_universe",
    "encode_netlist", "decode_netlist",
    "encode_golden", "decode_golden",
    "encode_coverage", "decode_coverage",
    "encode_design", "decode_design",
    "encode_program", "decode_program",
    "encode_net_waves", "decode_net_waves",
]

Arrays = Dict[str, Any]
Meta = Dict[str, Any]


# ----------------------------------------------------------------------
# Fault universes
# ----------------------------------------------------------------------
def encode_universe(graph, universe: FaultUniverse) -> Tuple[Arrays, Meta]:
    """Pack a universe built from ``graph`` into flat arrays."""
    node_info = {n.nid: (n.fmt.width, n.kind is OpKind.SUB)
                 for n in graph.arithmetic_nodes}
    cell_node = np.array([nid for nid, _bit in universe.cells],
                        dtype=np.int64)
    cell_bit = np.array([bit for _nid, bit in universe.cells],
                        dtype=np.int64)
    cell_width = np.empty(len(universe.cells), dtype=np.int64)
    cell_is_sub = np.empty(len(universe.cells), dtype=np.bool_)
    for row, (nid, _bit) in enumerate(universe.cells):
        try:
            width, is_sub = node_info[nid]
        except KeyError:
            raise CacheError(
                f"universe cell references node {nid} absent from graph")
        cell_width[row] = width
        cell_is_sub[row] = is_sub
    fault_slot = np.empty(universe.fault_count, dtype=np.int64)
    for i, fault in enumerate(universe.faults):
        row = int(universe.fault_cell[i])
        variant = variant_for_bit(int(cell_bit[row]), int(cell_width[row]),
                                  bool(cell_is_sub[row]))
        slots = {cf.name: s for s, cf in enumerate(variant.faults)}
        fault_slot[i] = slots[fault.cell_fault.name]
    arrays = {
        "cell_node": cell_node,
        "cell_bit": cell_bit,
        "cell_width": cell_width,
        "cell_is_sub": cell_is_sub,
        "fault_cell": universe.fault_cell.astype(np.int64),
        "fault_slot": fault_slot,
        "fault_mask": universe.fault_mask.astype(np.uint8),
    }
    meta = {
        "design_name": universe.design_name,
        "uncollapsed_count": universe.uncollapsed_count,
        "untestable_count": universe.untestable_count,
        "fault_count": universe.fault_count,
    }
    return arrays, meta


def decode_universe(arrays: Arrays, meta: Meta) -> FaultUniverse:
    cell_node = arrays["cell_node"]
    cell_bit = arrays["cell_bit"]
    cell_width = arrays["cell_width"]
    cell_is_sub = arrays["cell_is_sub"]
    cells = [(int(n), int(b)) for n, b in zip(cell_node, cell_bit)]
    cell_index = {cb: row for row, cb in enumerate(cells)}
    fault_cell = arrays["fault_cell"].astype(np.int64)
    fault_slot = arrays["fault_slot"]
    fault_mask = arrays["fault_mask"].astype(np.uint8)
    faults: List[DesignFault] = []
    for i in range(len(fault_cell)):
        row = int(fault_cell[i])
        variant = variant_for_bit(int(cell_bit[row]), int(cell_width[row]),
                                  bool(cell_is_sub[row]))
        cf = variant.faults[int(fault_slot[i])]
        faults.append(DesignFault(
            index=i, node_id=int(cell_node[row]), bit=int(cell_bit[row]),
            cell_fault=cf, effective_mask=int(fault_mask[i])))
    universe = FaultUniverse(
        design_name=str(meta["design_name"]),
        faults=faults,
        cells=cells,
        cell_index=cell_index,
        fault_cell=fault_cell,
        fault_mask=fault_mask,
        uncollapsed_count=int(meta["uncollapsed_count"]),
        untestable_count=int(meta["untestable_count"]),
    )
    if universe.fault_count != int(meta["fault_count"]):
        raise CacheError("decoded universe fault count mismatch")
    return universe


# ----------------------------------------------------------------------
# Gate netlists
# ----------------------------------------------------------------------
_GATE_KINDS = ("xor", "and", "or", "not", "buf")


def _site_doc(sites: Dict[str, object]) -> Dict[str, Any]:
    doc: Dict[str, Any] = {}
    for name, line in sites.items():
        kind, payload = line  # type: ignore[misc]
        if kind == "net":
            doc[name] = ["net", int(payload)]
        else:
            doc[name] = ["pins", [[int(g), int(p)] for g, p in payload]]
    return doc


def encode_netlist(nl: GateNetlist) -> Tuple[Arrays, Meta]:
    gate_kind = np.array([_GATE_KINDS.index(g.kind) for g in nl.gates],
                        dtype=np.int8)
    gate_out = np.array([g.out for g in nl.gates], dtype=np.int64)
    ins_flat: List[int] = []
    ins_off = [0]
    for g in nl.gates:
        ins_flat.extend(g.ins)
        ins_off.append(len(ins_flat))
    gate_cell = np.array(
        [(-1, -1) if g.cell is None else (g.cell.node_id, g.cell.bit)
         for g in nl.gates], dtype=np.int64).reshape(len(nl.gates), 2)
    elements = np.array(
        [(0 if kind == "gate" else 1, idx) for kind, idx in nl.elements],
        dtype=np.int64).reshape(len(nl.elements), 2)
    node_ids = sorted(nl.node_bits)
    nb_flat: List[int] = []
    nb_off = [0]
    for nid in node_ids:
        nb_flat.extend(nl.node_bits[nid])
        nb_off.append(len(nb_flat))
    arrays = {
        "gate_kind": gate_kind,
        "gate_out": gate_out,
        "gate_ins": np.array(ins_flat, dtype=np.int64),
        "gate_ins_off": np.array(ins_off, dtype=np.int64),
        "gate_cell": gate_cell,
        "dff_d": np.array([d.d for d in nl.dffs], dtype=np.int64),
        "dff_q": np.array([d.q for d in nl.dffs], dtype=np.int64),
        "elements": elements,
        "input_bits": np.array(nl.input_bits, dtype=np.int64),
        "output_bits": np.array(nl.output_bits, dtype=np.int64),
        "node_ids": np.array(node_ids, dtype=np.int64),
        "node_bits": np.array(nb_flat, dtype=np.int64),
        "node_bits_off": np.array(nb_off, dtype=np.int64),
        "names": np.frombuffer("\n".join(nl.names).encode("utf-8"),
                               dtype=np.uint8),
    }
    meta = {
        "cell_sites": {f"{nid}:{bit}": _site_doc(sites)
                       for (nid, bit), sites in nl.cell_sites.items()},
    }
    return arrays, meta


def decode_netlist(arrays: Arrays, meta: Meta) -> GateNetlist:
    nl = GateNetlist()
    nl.names = bytes(arrays["names"].tobytes()).decode("utf-8").split("\n")
    ins_off = arrays["gate_ins_off"]
    ins_flat = arrays["gate_ins"]
    gate_cell = arrays["gate_cell"]
    nl.gates = []
    for i in range(len(arrays["gate_kind"])):
        node_id, bit = int(gate_cell[i, 0]), int(gate_cell[i, 1])
        cell = None if node_id < 0 else GateRef(node_id=node_id, bit=bit)
        ins = tuple(int(x) for x in
                    ins_flat[int(ins_off[i]):int(ins_off[i + 1])])
        nl.gates.append(Gate(kind=_GATE_KINDS[int(arrays["gate_kind"][i])],
                             out=int(arrays["gate_out"][i]), ins=ins,
                             cell=cell))
    nl.dffs = [Dff(d=int(d), q=int(q))
               for d, q in zip(arrays["dff_d"], arrays["dff_q"])]
    nl.elements = [("gate" if int(kind) == 0 else "dff", int(idx))
                   for kind, idx in arrays["elements"]]
    nl.input_bits = [int(x) for x in arrays["input_bits"]]
    nl.output_bits = [int(x) for x in arrays["output_bits"]]
    nb_off = arrays["node_bits_off"]
    nb_flat = arrays["node_bits"]
    nl.node_bits = {
        int(nid): [int(x) for x in nb_flat[int(nb_off[i]):int(nb_off[i + 1])]]
        for i, nid in enumerate(arrays["node_ids"])
    }
    sites_doc = meta.get("cell_sites", {})
    nl.cell_sites = {}
    for key, doc in sites_doc.items():
        nid, bit = key.split(":")
        sites: Dict[str, object] = {}
        for name, (kind, payload) in doc.items():
            if kind == "net":
                sites[name] = ("net", int(payload))
            else:
                sites[name] = ("pins",
                               tuple((int(g), int(p)) for g, p in payload))
        nl.cell_sites[(int(nid), int(bit))] = sites
    return nl


# ----------------------------------------------------------------------
# Compiled netlist programs
# ----------------------------------------------------------------------
def encode_program(prog) -> Tuple[Arrays, Meta]:
    """Flatten a :class:`~repro.gates.compiled.CompiledNetlist`.

    One row per (level, kind) op group, CSR-style: ``grp_off`` delimits
    each group's slice of the flat per-op arrays.  ``flat_in1`` is -1
    for one-input kinds (their groups carry no second operand).
    """
    from ..gates.compiled import OP_KINDS

    grp_level: List[int] = []
    grp_kind: List[int] = []
    grp_off = [0]
    flat_elem: List[np.ndarray] = []
    flat_out: List[np.ndarray] = []
    flat_in0: List[np.ndarray] = []
    flat_in1: List[np.ndarray] = []
    for li, ops in enumerate(prog.levels):
        for op in ops:
            grp_level.append(li)
            grp_kind.append(OP_KINDS.index(op.kind))
            grp_off.append(grp_off[-1] + len(op.out))
            flat_elem.append(op.elem)
            flat_out.append(op.out)
            flat_in0.append(op.in0)
            flat_in1.append(op.in1 if op.in1 is not None
                            else np.full(len(op.out), -1, dtype=np.int64))
    empty = np.zeros(0, dtype=np.int64)
    arrays = {
        "grp_level": np.array(grp_level, dtype=np.int64),
        "grp_kind": np.array(grp_kind, dtype=np.int8),
        "grp_off": np.array(grp_off, dtype=np.int64),
        "flat_elem": np.concatenate(flat_elem) if flat_elem else empty,
        "flat_out": np.concatenate(flat_out) if flat_out else empty,
        "flat_in0": np.concatenate(flat_in0) if flat_in0 else empty,
        "flat_in1": np.concatenate(flat_in1) if flat_in1 else empty,
        "net_level": prog.net_level.astype(np.int64),
        "input_bits": prog.input_bits.astype(np.int64),
        "output_bits": prog.output_bits.astype(np.int64),
    }
    meta = {"n_nets": int(prog.n_nets), "n_levels": int(prog.n_levels)}
    return arrays, meta


def decode_program(arrays: Arrays, meta: Meta):
    from ..gates.compiled import OP_KINDS, CompiledNetlist, LevelOp

    n_levels = int(meta["n_levels"])
    prog = CompiledNetlist(
        n_nets=int(meta["n_nets"]),
        input_bits=arrays["input_bits"].astype(np.int64),
        output_bits=arrays["output_bits"].astype(np.int64),
        levels=[[] for _ in range(n_levels)],
        net_level=arrays["net_level"].astype(np.int64),
    )
    off = arrays["grp_off"]
    two_input = frozenset(("xor", "and", "or"))
    for g in range(len(arrays["grp_kind"])):
        lo, hi = int(off[g]), int(off[g + 1])
        kind = OP_KINDS[int(arrays["grp_kind"][g])]
        li = int(arrays["grp_level"][g])
        if li >= n_levels:
            raise CacheError("compiled program group level out of range")
        op = LevelOp(
            kind=kind,
            elem=arrays["flat_elem"][lo:hi].astype(np.int64),
            out=arrays["flat_out"][lo:hi].astype(np.int64),
            in0=arrays["flat_in0"][lo:hi].astype(np.int64),
            in1=(arrays["flat_in1"][lo:hi].astype(np.int64)
                 if kind in two_input else None),
        )
        oi = len(prog.levels[li])
        if kind != "dff":
            for pos, gidx in enumerate(op.elem):
                prog.gate_loc[int(gidx)] = (li, oi, pos)
        prog.levels[li].append(op)
    return prog


# ----------------------------------------------------------------------
# Golden per-net waveform matrices
# ----------------------------------------------------------------------
def encode_net_waves(waves: np.ndarray) -> Tuple[Arrays, Meta]:
    """Bit-pack a boolean (nets, T) golden waveform matrix."""
    waves = np.asarray(waves, dtype=bool)
    packed = np.packbits(waves, axis=1)
    return ({"waves": packed},
            {"n_nets": int(waves.shape[0]), "n_vectors": int(waves.shape[1])})


def decode_net_waves(arrays: Arrays, meta: Meta) -> np.ndarray:
    n_nets = int(meta["n_nets"])
    n_vectors = int(meta["n_vectors"])
    waves = np.unpackbits(arrays["waves"], axis=1,
                          count=n_vectors).astype(bool)
    if waves.shape != (n_nets, n_vectors):
        raise CacheError("net-waves matrix shape mismatch")
    return waves


# ----------------------------------------------------------------------
# Golden waveforms
# ----------------------------------------------------------------------
def encode_golden(golden: np.ndarray) -> Tuple[Arrays, Meta]:
    out = np.asarray(golden)
    return {"golden": out}, {"n_vectors": int(out.shape[0])}


def decode_golden(arrays: Arrays, meta: Meta) -> np.ndarray:
    golden = arrays["golden"]
    if int(meta.get("n_vectors", len(golden))) != len(golden):
        raise CacheError("golden waveform length mismatch")
    return golden


# ----------------------------------------------------------------------
# Coverage results
# ----------------------------------------------------------------------
def encode_coverage(result) -> Tuple[Arrays, Meta]:
    return (
        {"detect_time": np.asarray(result.detect_time, dtype=np.int64)},
        {"design_name": result.design_name,
         "generator_name": result.generator_name,
         "n_vectors": int(result.n_vectors),
         "fault_count": int(result.universe.fault_count)},
    )


def decode_coverage(arrays: Arrays, meta: Meta, universe: FaultUniverse):
    from ..faultsim.engine import coverage_from_detect_times

    if universe.fault_count != int(meta["fault_count"]):
        raise CacheError(
            f"cached coverage graded {meta['fault_count']} faults but "
            f"universe has {universe.fault_count}")
    return coverage_from_detect_times(
        universe, arrays["detect_time"],
        n_vectors=int(meta["n_vectors"]),
        design_name=str(meta["design_name"]),
        generator_name=str(meta["generator_name"]),
    )


# ----------------------------------------------------------------------
# Designs
# ----------------------------------------------------------------------
def encode_design(design) -> Tuple[Arrays, Meta]:
    from ..rtl.serialize import design_to_dict

    return {}, {"design": design_to_dict(design)}


def decode_design(arrays: Arrays, meta: Meta):
    from ..rtl.serialize import design_from_dict

    return design_from_dict(meta["design"])
