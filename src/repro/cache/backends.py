"""Pluggable byte-level storage backends for the artifact cache.

:class:`~repro.cache.store.ArtifactCache` owns keys, npz encoding and
hit/miss accounting; *where the encoded bytes live* is a backend:

* :class:`LocalStore` — the original on-disk layout
  (``<root>/<kind>/<hash>.npz``, atomic ``os.replace`` writes, LRU
  size-cap eviction with hit-refreshed mtimes).
* :class:`HttpStore` — a remote content-addressed artifact server
  (``repro artifacts serve``) spoken to over plain HTTP, so a fleet of
  workers shares one pool of compiled netlists, goldens and net-wave
  matrices under the same keys.  Remote traffic is mirrored into the
  ``cache.remote_bytes_in`` / ``cache.remote_bytes_out`` telemetry
  counters; unreachable servers degrade to a miss (the caller
  recomputes) rather than failing the computation.

Both expose the same four byte-level operations (``get`` / ``put`` /
``delete`` / ``entries``), so anything honouring that contract — an
object store, a database — slots in without touching the cache layer.
"""

from __future__ import annotations

import http.client
import logging
import os
import tempfile
from typing import List, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import CacheError
from ..telemetry import get_telemetry

__all__ = ["HttpStore", "LocalStore", "StoreBackend"]

logger = logging.getLogger(__name__)

#: Characters allowed in kinds and keys — everything the pipeline emits
#: (hex hashes, short kind names); rejects path traversal outright.
_SAFE = frozenset("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def safe_component(name: str) -> str:
    """Validate one path component of an artifact address."""
    if not name or name in (".", "..") or not set(name) <= _SAFE:
        raise CacheError(f"unsafe artifact path component {name!r}")
    return name


class StoreBackend:
    """Byte-level storage contract the cache layer programs against.

    ``remote`` flips the telemetry counter family the cache layer uses
    (``cache.*`` vs ``cache.remote_*``) so local and remote traffic are
    separable on one dashboard.
    """

    remote = False

    def get(self, kind: str, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def put(self, kind: str, key: str, data: bytes) -> None:
        raise NotImplementedError

    def delete(self, kind: str, key: str) -> None:
        raise NotImplementedError

    def entries(self) -> List[Tuple[str, float, int]]:
        """All ``(ref, mtime, size)`` entries, oldest first (may be
        empty for backends that manage retention themselves)."""
        return []

    def evict(self, max_bytes: Optional[int]) -> int:
        """Enforce a size cap, if this backend does retention locally."""
        return 0

    def describe(self) -> str:
        raise NotImplementedError


class LocalStore(StoreBackend):
    """The original on-disk npz layout under one root directory."""

    remote = False

    def __init__(self, root: str):
        self.root = os.path.abspath(root)

    def path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, safe_component(kind),
                            f"{safe_component(key)}.npz")

    def get(self, kind: str, key: str) -> Optional[bytes]:
        path = self.path(kind, key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:  # unreadable entry: treat as a miss
            logger.warning("cache: unreadable entry %s (%s)", path, exc)
            return None
        self._touch(path)
        return data

    def put(self, kind: str, key: str, data: bytes) -> None:
        path = self.path(kind, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".tmp", prefix=f".{key[:12]}-",
                                   dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            self._remove(tmp)
            raise

    def delete(self, kind: str, key: str) -> None:
        self._remove(self.path(kind, key))

    def entries(self) -> List[Tuple[str, float, int]]:
        found: List[Tuple[str, float, int]] = []
        if not os.path.isdir(self.root):
            return found
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                found.append((path, st.st_mtime, st.st_size))
        found.sort(key=lambda e: (e[1], e[0]))
        return found

    def evict(self, max_bytes: Optional[int]) -> int:
        if max_bytes is None:
            return 0
        entries = self.entries()
        total = sum(size for _p, _m, size in entries)
        removed = 0
        tel = get_telemetry()
        for path, _mtime, size in entries:
            if total <= max_bytes:
                break
            self._remove(path)
            total -= size
            removed += 1
            kind = os.path.basename(os.path.dirname(path))
            if tel.enabled:
                tel.counter("cache.evict").add(1)
                tel.counter(f"cache.evict.{kind}").add(1)
        return removed

    def describe(self) -> str:
        return self.root

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - fs without utime permission
            pass

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - already gone / racing writer
            pass


class HttpStore(StoreBackend):
    """Content-addressed artifacts over HTTP (``repro artifacts serve``).

    ``GET /v1/artifacts/{kind}/{key}`` fetches the encoded entry (404 on
    miss), ``PUT`` stores one, ``DELETE`` drops one.  The server owns
    retention (LRU under its own size cap), so the client side never
    evicts.  Every byte moved is counted on ``cache.remote_bytes_in`` /
    ``cache.remote_bytes_out``; transport failures are logged, counted
    on ``cache.remote_error``, and reported as misses so a dead artifact
    server only costs recomputation, never correctness.
    """

    remote = True

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise CacheError(
                f"only http:// artifact stores are supported, "
                f"got {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    def _url(self, kind: str, key: str) -> str:
        return f"/v1/artifacts/{safe_component(kind)}/{safe_component(key)}"

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> Tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, path, body=body, headers={
                "Content-Type": "application/octet-stream",
                "Connection": "close",
            })
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def _failed(self, op: str, exc: Exception) -> None:
        logger.warning("cache: remote store %s failed (%s: %s)",
                       op, type(exc).__name__, exc)
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("cache.remote_error").add(1)

    def get(self, kind: str, key: str) -> Optional[bytes]:
        try:
            status, data = self._request("GET", self._url(kind, key))
        except OSError as exc:
            self._failed("get", exc)
            return None
        if status != 200:
            return None
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("cache.remote_bytes_in").add(len(data))
        return data

    def put(self, kind: str, key: str, data: bytes) -> None:
        try:
            status, _body = self._request("PUT", self._url(kind, key),
                                          body=data)
        except OSError as exc:
            self._failed("put", exc)
            return
        if status not in (200, 201, 204):
            self._failed("put", CacheError(f"HTTP {status}"))
            return
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("cache.remote_bytes_out").add(len(data))

    def delete(self, kind: str, key: str) -> None:
        try:
            self._request("DELETE", self._url(kind, key))
        except OSError as exc:
            self._failed("delete", exc)

    def describe(self) -> str:
        return f"http://{self.host}:{self.port}"
