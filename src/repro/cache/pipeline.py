"""Get-or-compute helpers tying the store to the fault-sim pipeline.

Each helper hashes the inputs that pin an artifact's content (design
fingerprint, generator configuration, vector count — code version is
folded in by the store), consults the cache, and falls back to the
supplied compute callable on a miss, storing the fresh result.  Every
helper accepts ``cache=None`` and degrades to a plain call, so call
sites need no conditional plumbing.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from . import artifacts
from .keys import design_fingerprint, generator_fingerprint
from .store import ArtifactCache

__all__ = [
    "cached_design", "cached_universe", "cached_netlist",
    "cached_golden", "cached_coverage",
]


def cached_design(cache: Optional[ArtifactCache], ref: str,
                  compute: Callable):
    """A named deterministic design (reference designs are keyed by name)."""
    if cache is None:
        return compute()
    payload = {"ref": ref}
    entry = cache.load("design", payload)
    if entry is not None:
        return artifacts.decode_design(entry, entry["__meta__"])
    design = compute()
    arrays, meta = artifacts.encode_design(design)
    cache.store("design", payload, arrays, meta)
    return design


def cached_universe(cache: Optional[ArtifactCache], design,
                    compute: Callable):
    if cache is None:
        return compute()
    payload = {"design": design_fingerprint(design)}
    entry = cache.load("universe", payload)
    if entry is not None:
        return artifacts.decode_universe(entry, entry["__meta__"])
    universe = compute()
    arrays, meta = artifacts.encode_universe(design.graph, universe)
    cache.store("universe", payload, arrays, meta)
    return universe


def cached_netlist(cache: Optional[ArtifactCache], design,
                   compute: Callable):
    if cache is None:
        return compute()
    payload = {"design": design_fingerprint(design)}
    entry = cache.load("netlist", payload)
    if entry is not None:
        return artifacts.decode_netlist(entry, entry["__meta__"])
    netlist = compute()
    arrays, meta = artifacts.encode_netlist(netlist)
    cache.store("netlist", payload, arrays, meta)
    return netlist


def cached_golden(cache: Optional[ArtifactCache], design, generator,
                  n_vectors: int, compute: Callable) -> np.ndarray:
    if cache is None:
        return compute()
    payload = {
        "design": design_fingerprint(design),
        "generator": generator_fingerprint(generator),
        "n_vectors": int(n_vectors),
    }
    entry = cache.load("golden", payload)
    if entry is not None:
        return artifacts.decode_golden(entry, entry["__meta__"])
    golden = compute()
    arrays, meta = artifacts.encode_golden(golden)
    cache.store("golden", payload, arrays, meta)
    return golden


def cached_coverage(cache: Optional[ArtifactCache], design, generator,
                    n_vectors: int, universe, compute: Callable):
    if cache is None:
        return compute()
    payload = {
        "design": design_fingerprint(design),
        "generator": generator_fingerprint(generator),
        "n_vectors": int(n_vectors),
    }
    entry = cache.load("coverage", payload)
    if entry is not None:
        return artifacts.decode_coverage(entry, entry["__meta__"], universe)
    result = compute()
    arrays, meta = artifacts.encode_coverage(result)
    cache.store("coverage", payload, arrays, meta)
    return result
