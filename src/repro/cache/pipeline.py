"""Get-or-compute helpers tying the store to the fault-sim pipeline.

Each helper hashes the inputs that pin an artifact's content (design
fingerprint, generator configuration, vector count — code version is
folded in by the store), consults the cache, and falls back to the
supplied compute callable on a miss, storing the fresh result.  Every
helper accepts ``cache=None`` and degrades to a plain call, so call
sites need no conditional plumbing.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from . import artifacts
from .keys import (
    design_fingerprint,
    generator_fingerprint,
    netlist_fingerprint,
    stimulus_fingerprint,
)
from .store import ArtifactCache

__all__ = [
    "cached_design", "cached_universe", "cached_netlist",
    "cached_golden", "cached_coverage",
    "cached_gate_program", "cached_net_waves",
]


def cached_design(cache: Optional[ArtifactCache], ref: str,
                  compute: Callable):
    """A named deterministic design (reference designs are keyed by name)."""
    if cache is None:
        return compute()
    payload = {"ref": ref}
    entry = cache.load("design", payload)
    if entry is not None:
        return artifacts.decode_design(entry, entry["__meta__"])
    design = compute()
    arrays, meta = artifacts.encode_design(design)
    cache.store("design", payload, arrays, meta)
    return design


def cached_universe(cache: Optional[ArtifactCache], design,
                    compute: Callable):
    if cache is None:
        return compute()
    payload = {"design": design_fingerprint(design)}
    entry = cache.load("universe", payload)
    if entry is not None:
        return artifacts.decode_universe(entry, entry["__meta__"])
    universe = compute()
    arrays, meta = artifacts.encode_universe(design.graph, universe)
    cache.store("universe", payload, arrays, meta)
    return universe


def cached_netlist(cache: Optional[ArtifactCache], design,
                   compute: Callable):
    if cache is None:
        return compute()
    payload = {"design": design_fingerprint(design)}
    entry = cache.load("netlist", payload)
    if entry is not None:
        return artifacts.decode_netlist(entry, entry["__meta__"])
    netlist = compute()
    arrays, meta = artifacts.encode_netlist(netlist)
    cache.store("netlist", payload, arrays, meta)
    return netlist


def cached_gate_program(cache: Optional[ArtifactCache], nl,
                        compute: Callable):
    """The netlist's compiled levelized program, keyed on netlist content.

    The exact gate-level engine compiles once per process anyway
    (:func:`repro.gates.compiled.compiled_program` memoizes on the
    netlist object); the store makes the program survive across worker
    processes and CLI invocations.
    """
    if cache is None:
        return compute()
    payload = {"netlist": netlist_fingerprint(nl)}
    entry = cache.load("gateprog", payload)
    if entry is not None:
        return artifacts.decode_program(entry, entry["__meta__"])
    program = compute()
    arrays, meta = artifacts.encode_program(program)
    cache.store("gateprog", payload, arrays, meta)
    return program


def cached_net_waves(cache: Optional[ArtifactCache], nl, input_raw,
                     compute: Callable) -> np.ndarray:
    """Golden per-net waveforms, keyed on netlist + stimulus content.

    This is the gate-level analogue of :func:`cached_golden`: the
    fault-free machine is simulated once per (netlist, stimulus) pair
    and every later `gate_level_missed` call — in this or any process —
    loads the bit-packed matrix instead of re-simulating.
    """
    if cache is None:
        return compute()
    payload = {
        "netlist": netlist_fingerprint(nl),
        "stimulus": stimulus_fingerprint(input_raw),
    }
    entry = cache.load("netwaves", payload)
    if entry is not None:
        return artifacts.decode_net_waves(entry, entry["__meta__"])
    waves = compute()
    arrays, meta = artifacts.encode_net_waves(waves)
    cache.store("netwaves", payload, arrays, meta)
    return waves


def cached_golden(cache: Optional[ArtifactCache], design, generator,
                  n_vectors: int, compute: Callable) -> np.ndarray:
    if cache is None:
        return compute()
    payload = {
        "design": design_fingerprint(design),
        "generator": generator_fingerprint(generator),
        "n_vectors": int(n_vectors),
    }
    entry = cache.load("golden", payload)
    if entry is not None:
        return artifacts.decode_golden(entry, entry["__meta__"])
    golden = compute()
    arrays, meta = artifacts.encode_golden(golden)
    cache.store("golden", payload, arrays, meta)
    return golden


def cached_coverage(cache: Optional[ArtifactCache], design, generator,
                    n_vectors: int, universe, compute: Callable):
    if cache is None:
        return compute()
    payload = {
        "design": design_fingerprint(design),
        "generator": generator_fingerprint(generator),
        "n_vectors": int(n_vectors),
    }
    entry = cache.load("coverage", payload)
    if entry is not None:
        return artifacts.decode_coverage(entry, entry["__meta__"], universe)
    result = compute()
    arrays, meta = artifacts.encode_coverage(result)
    cache.store("coverage", payload, arrays, meta)
    return result
