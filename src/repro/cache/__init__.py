"""Content-addressed artifact cache for the fault-simulation pipeline.

The paper's experiment grids recompute the same heavyweight artifacts —
fault universes, elaborated gate netlists, golden output waveforms and
full coverage runs — on every invocation.  This package gives them a
durable home: an on-disk npz store addressed by a stable hash of
*everything that determines the artifact's content* (design fingerprint,
generator configuration, vector count, code version), with atomic
writes, LRU size-cap eviction and telemetry-visible hit/miss counters.

Typical use::

    from repro.cache import ArtifactCache
    from repro.experiments import ExperimentContext

    ctx = ExperimentContext(cache=ArtifactCache("~/.cache/repro"))
    ctx.coverage("LP", gen, 4096)   # second process-run: pure cache hits

or from the CLI: ``python -m repro sweep --cache-dir PATH`` /
``--no-cache``.  Keys change with :data:`~repro.cache.keys.CACHE_SCHEMA`
and the package version, so upgrades never read stale encodings.
"""

from .backends import HttpStore, LocalStore, StoreBackend, safe_component
from .keys import (
    CACHE_SCHEMA,
    code_version,
    design_fingerprint,
    generator_fingerprint,
    netlist_fingerprint,
    stable_hash,
    stimulus_fingerprint,
)
from .pipeline import (
    cached_coverage,
    cached_design,
    cached_gate_program,
    cached_golden,
    cached_net_waves,
    cached_netlist,
    cached_universe,
)
from .server import ArtifactServer
from .store import ArtifactCache, CacheStats, default_cache_dir

__all__ = [
    "ArtifactCache",
    "ArtifactServer",
    "CACHE_SCHEMA",
    "CacheStats",
    "cached_coverage",
    "cached_design",
    "cached_gate_program",
    "cached_golden",
    "cached_net_waves",
    "cached_netlist",
    "cached_universe",
    "code_version",
    "default_cache_dir",
    "design_fingerprint",
    "generator_fingerprint",
    "HttpStore",
    "LocalStore",
    "netlist_fingerprint",
    "safe_component",
    "stable_hash",
    "stimulus_fingerprint",
    "StoreBackend",
]
