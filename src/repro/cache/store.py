"""Content-addressed artifact store.

Entries are ``.npz`` documents addressed by ``(kind, hash)`` where
``hash`` is the :func:`~repro.cache.keys.stable_hash` of the key
payload.  *Where the bytes live* is a pluggable
:class:`~repro.cache.backends.StoreBackend`: the default
:class:`~repro.cache.backends.LocalStore` keeps the original on-disk
layout (``<root>/<kind>/<hash>.npz``, atomic ``os.replace`` writes,
LRU size-cap eviction with hit-refreshed mtimes), while
:class:`~repro.cache.backends.HttpStore` shares one artifact server
across a worker fleet — pass an ``http://host:port`` URL where a
directory is expected (``--cache-dir``, ``$REPRO_CACHE_DIR``) and the
cache goes remote with the same keys.

The store recovers from corrupted or truncated entries by evicting
them.  Hit/miss/store/eviction totals are kept per store instance and
mirrored into the active telemetry collector as ``cache.hit`` /
``cache.miss`` / ``cache.store`` / ``cache.evict`` counters (plus
per-kind variants such as ``cache.hit.universe``); remote backends use
the parallel ``cache.remote_hit`` / ``cache.remote_miss`` /
``cache.remote_store`` family, so a warm-run assertion is one counter
read either way.
"""

from __future__ import annotations

import io
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CacheError
from ..telemetry import get_telemetry
from .backends import HttpStore, LocalStore, StoreBackend
from .keys import code_version, stable_hash

__all__ = ["ArtifactCache", "CacheStats", "default_cache_dir"]

logger = logging.getLogger(__name__)

#: Default size cap: 2 GiB holds hundreds of full-grid coverage runs.
DEFAULT_MAX_BYTES = 2 << 30

#: Key under which the JSON metadata document rides inside each npz.
_META = "__meta__"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, or a per-user cache directory.

    The environment value may also be an ``http://`` artifact-server
    URL (see :class:`~repro.cache.backends.HttpStore`).
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro")


@dataclass
class CacheStats:
    """Running totals for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    recovered: int = 0
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def bump(self, kind: str, event: str) -> None:
        setattr(self, event, getattr(self, event) + 1)
        per = self.by_kind.setdefault(kind, {})
        per[event] = per.get(event, 0) + 1


class ArtifactCache:
    """A content-addressed npz store with LRU size-cap eviction.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write), or an
        ``http://host:port`` artifact-server URL for a remote store.
    max_bytes:
        Total-size cap enforced after every store; ``None`` disables
        eviction.  Remote stores enforce their own cap server-side.
    backend:
        Explicit :class:`~repro.cache.backends.StoreBackend`; overrides
        ``root``.
    """

    def __init__(self, root: Optional[str] = None,
                 max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
                 backend: Optional[StoreBackend] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        if backend is None:
            spec = str(root) if root is not None else default_cache_dir()
            if spec.startswith(("http://", "https://")):
                backend = HttpStore(spec)
            else:
                backend = LocalStore(spec)
        self.backend = backend
        self.root = backend.describe()
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key(self, kind: str, payload: Dict[str, Any]) -> str:
        """The content hash addressing ``payload`` under ``kind``."""
        doc = dict(payload)
        doc["__kind__"] = kind
        doc["__code__"] = code_version()
        return stable_hash(doc)

    def entry_path(self, kind: str, key: str) -> str:
        if isinstance(self.backend, LocalStore):
            return self.backend.path(kind, key)
        return f"{self.root}/v1/artifacts/{kind}/{key}"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, kind: str, payload: Dict[str, Any]
             ) -> Optional[Dict[str, Any]]:
        """Fetch the arrays stored for ``payload``, or ``None`` on miss.

        A corrupted or unreadable entry counts as a miss; the broken
        entry is removed so the slot can be rebuilt cleanly.
        """
        key = self.key(kind, payload)
        tel = get_telemetry()
        data = self.backend.get(kind, key)
        if data is None:
            self._count(tel, kind, "miss")
            return None
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as npz:
                out = self._decode(npz)
        except Exception as exc:  # truncated/corrupted/foreign entry
            logger.warning("cache: evicting corrupted entry %s/%s (%s)",
                           kind, key, exc)
            self.backend.delete(kind, key)
            self.stats.bump(kind, "recovered")
            self._count(tel, kind, "miss")
            return None
        self._count(tel, kind, "hit")
        return out

    def store(self, kind: str, payload: Dict[str, Any],
              arrays: Dict[str, Any], meta: Optional[Dict[str, Any]] = None
              ) -> str:
        """Write an entry atomically; returns its address.

        ``arrays`` maps names to numpy arrays (scalars are promoted);
        ``meta`` is an optional JSON document stored alongside them.
        """
        for name in arrays:
            if name == _META:
                raise CacheError(f"array name {name!r} is reserved")
        key = self.key(kind, payload)
        encoded = {k: np.asarray(v) for k, v in arrays.items()}
        encoded[_META] = np.frombuffer(
            json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8)
        buf = io.BytesIO()
        np.savez_compressed(buf, **encoded)
        self.backend.put(kind, key, buf.getvalue())
        self._count(get_telemetry(), kind, "store")
        self.evict()
        return self.entry_path(kind, key)

    # ------------------------------------------------------------------
    # Eviction and maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[str, float, int]]:
        """All ``(path, mtime, size)`` entries, oldest first."""
        return self.backend.entries()

    def total_bytes(self) -> int:
        return sum(size for _path, _mtime, size in self.entries())

    def evict(self) -> int:
        """Drop least-recently-used entries until under the size cap."""
        removed = self.backend.evict(self.max_bytes)
        if removed:
            # Backend counted per-kind telemetry; fold into local stats.
            self.stats.evictions += removed
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        entries = self.entries()
        for path, _mtime, _size in entries:
            try:
                os.remove(path)
            except OSError:
                pass
        return len(entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _decode(npz) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in npz.files:
            if name == _META:
                raw = bytes(npz[name].tobytes())
                out[_META] = json.loads(raw.decode("utf-8")) if raw else {}
            else:
                out[name] = npz[name]
        out.setdefault(_META, {})
        return out

    _EVENT_COUNTER = {"hit": "cache.hit", "miss": "cache.miss",
                      "store": "cache.store", "evict": "cache.evict"}
    _REMOTE_COUNTER = {"hit": "cache.remote_hit",
                       "miss": "cache.remote_miss",
                       "store": "cache.remote_store",
                       "evict": "cache.remote_evict"}
    _EVENT_STAT = {"hit": "hits", "miss": "misses",
                   "store": "stores", "evict": "evictions"}

    def _count(self, tel, kind: str, event: str) -> None:
        self.stats.bump(kind, self._EVENT_STAT[event])
        if tel.enabled:
            table = (self._REMOTE_COUNTER if self.backend.remote
                     else self._EVENT_COUNTER)
            base = table[event]
            tel.counter(base).add(1)
            tel.counter(f"{base}.{kind}").add(1)
