"""Content-addressed on-disk artifact store.

Entries are ``.npz`` files under ``<root>/<kind>/<hash>.npz`` where
``hash`` is the :func:`~repro.cache.keys.stable_hash` of the key
payload.  The store is safe against concurrent writers (atomic
``os.replace`` of a same-directory temp file), recovers from corrupted
or truncated entries by evicting them, and keeps total size under a cap
with least-recently-*used* eviction (hits refresh an entry's mtime).

Hit/miss/store/eviction totals are kept per store instance and mirrored
into the active telemetry collector as ``cache.hit`` / ``cache.miss`` /
``cache.store`` / ``cache.evict`` counters (plus per-kind variants such
as ``cache.hit.universe``), so a warm-run assertion is one counter read.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CacheError
from ..telemetry import get_telemetry
from .keys import code_version, stable_hash

__all__ = ["ArtifactCache", "CacheStats", "default_cache_dir"]

logger = logging.getLogger(__name__)

#: Default size cap: 2 GiB holds hundreds of full-grid coverage runs.
DEFAULT_MAX_BYTES = 2 << 30

#: Key under which the JSON metadata document rides inside each npz.
_META = "__meta__"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, or a per-user cache directory."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro")


@dataclass
class CacheStats:
    """Running totals for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    recovered: int = 0
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def bump(self, kind: str, event: str) -> None:
        setattr(self, event, getattr(self, event) + 1)
        per = self.by_kind.setdefault(kind, {})
        per[event] = per.get(event, 0) + 1


class ArtifactCache:
    """A content-addressed npz store with LRU size-cap eviction.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).
    max_bytes:
        Total-size cap enforced after every store; ``None`` disables
        eviction.
    """

    def __init__(self, root: Optional[str] = None,
                 max_bytes: Optional[int] = DEFAULT_MAX_BYTES):
        self.root = os.path.abspath(root or default_cache_dir())
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key(self, kind: str, payload: Dict[str, Any]) -> str:
        """The content hash addressing ``payload`` under ``kind``."""
        doc = dict(payload)
        doc["__kind__"] = kind
        doc["__code__"] = code_version()
        return stable_hash(doc)

    def entry_path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, f"{key}.npz")

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, kind: str, payload: Dict[str, Any]
             ) -> Optional[Dict[str, Any]]:
        """Fetch the arrays stored for ``payload``, or ``None`` on miss.

        A corrupted or unreadable entry counts as a miss; the broken
        file is removed so the slot can be rebuilt cleanly.
        """
        key = self.key(kind, payload)
        path = self.entry_path(kind, key)
        tel = get_telemetry()
        try:
            with np.load(path, allow_pickle=False) as npz:
                out = self._decode(npz)
        except FileNotFoundError:
            self._count(tel, kind, "miss")
            return None
        except Exception as exc:  # truncated/corrupted/foreign file
            logger.warning("cache: evicting corrupted entry %s (%s)",
                           path, exc)
            self._remove(path)
            self.stats.bump(kind, "recovered")
            self._count(tel, kind, "miss")
            return None
        self._touch(path)
        self._count(tel, kind, "hit")
        return out

    def store(self, kind: str, payload: Dict[str, Any],
              arrays: Dict[str, Any], meta: Optional[Dict[str, Any]] = None
              ) -> str:
        """Write an entry atomically; returns its path.

        ``arrays`` maps names to numpy arrays (scalars are promoted);
        ``meta`` is an optional JSON document stored alongside them.
        """
        for name in arrays:
            if name == _META:
                raise CacheError(f"array name {name!r} is reserved")
        key = self.key(kind, payload)
        path = self.entry_path(kind, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        encoded = {k: np.asarray(v) for k, v in arrays.items()}
        encoded[_META] = np.frombuffer(
            json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8)
        fd, tmp = tempfile.mkstemp(suffix=".tmp", prefix=f".{key[:12]}-",
                                   dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **encoded)
            os.replace(tmp, path)
        except BaseException:
            self._remove(tmp)
            raise
        self._count(get_telemetry(), kind, "store")
        self.evict()
        return path

    # ------------------------------------------------------------------
    # Eviction and maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[str, float, int]]:
        """All ``(path, mtime, size)`` entries, oldest first."""
        found: List[Tuple[str, float, int]] = []
        if not os.path.isdir(self.root):
            return found
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                found.append((path, st.st_mtime, st.st_size))
        found.sort(key=lambda e: (e[1], e[0]))
        return found

    def total_bytes(self) -> int:
        return sum(size for _path, _mtime, size in self.entries())

    def evict(self) -> int:
        """Drop least-recently-used entries until under the size cap."""
        if self.max_bytes is None:
            return 0
        entries = self.entries()
        total = sum(size for _p, _m, size in entries)
        removed = 0
        tel = get_telemetry()
        for path, _mtime, size in entries:
            if total <= self.max_bytes:
                break
            self._remove(path)
            total -= size
            removed += 1
            kind = os.path.basename(os.path.dirname(path))
            self._count(tel, kind, "evict")
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        entries = self.entries()
        for path, _mtime, _size in entries:
            self._remove(path)
        return len(entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _decode(npz) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in npz.files:
            if name == _META:
                raw = bytes(npz[name].tobytes())
                out[_META] = json.loads(raw.decode("utf-8")) if raw else {}
            else:
                out[name] = npz[name]
        out.setdefault(_META, {})
        return out

    _EVENT_COUNTER = {"hit": "cache.hit", "miss": "cache.miss",
                      "store": "cache.store", "evict": "cache.evict"}
    _EVENT_STAT = {"hit": "hits", "miss": "misses",
                   "store": "stores", "evict": "evictions"}

    def _count(self, tel, kind: str, event: str) -> None:
        self.stats.bump(kind, self._EVENT_STAT[event])
        if tel.enabled:
            base = self._EVENT_COUNTER[event]
            tel.counter(base).add(1)
            tel.counter(f"{base}.{kind}").add(1)

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - fs without utime permission
            pass

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - already gone / racing writer
            pass
