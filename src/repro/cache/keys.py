"""Stable content hashing for cache keys.

A cache key is the SHA-256 of a *canonical JSON* rendering of a key
payload: a plain dict of strings, numbers, booleans and nested
lists/dicts describing exactly what went into an artifact — design
fingerprint, generator configuration, vector count and the code version.
Two payloads hash equal iff they describe the same computation, so the
store never needs an invalidation protocol: changing any input (or
bumping :data:`CACHE_SCHEMA`) simply addresses different content.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

import numpy as np

from ..errors import CacheError

__all__ = [
    "CACHE_SCHEMA",
    "stable_hash",
    "code_version",
    "design_fingerprint",
    "generator_fingerprint",
    "netlist_fingerprint",
    "stimulus_fingerprint",
]

#: Bump whenever an artifact's on-disk encoding changes; every key
#: incorporates it, so stale entries are simply never addressed again
#: (and eventually age out of the LRU store).
CACHE_SCHEMA = 1


def _canonical(value: Any) -> Any:
    """Reduce a payload value to canonical JSON-compatible primitives."""
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        # repr round-trips exactly; format floats explicitly so the
        # rendering never depends on json library internals.
        return float(value).hex()
    if isinstance(value, np.ndarray):
        return {"__ndarray__": [str(value.dtype), list(value.shape)],
                "sha256": hashlib.sha256(
                    np.ascontiguousarray(value).tobytes()).hexdigest()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    raise CacheError(
        f"unhashable cache-key value of type {type(value).__name__}: "
        f"{value!r}")


def stable_hash(payload: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical rendering of ``payload``."""
    doc = json.dumps(_canonical(payload), sort_keys=True,
                     separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def code_version() -> str:
    """The code-version component every key embeds."""
    from .. import __version__

    return f"{__version__}+schema{CACHE_SCHEMA}"


def design_fingerprint(design) -> Dict[str, Any]:
    """Content fingerprint of a :class:`~repro.rtl.build.FilterDesign`.

    Captures everything that determines the datapath: the realized
    coefficient words, formats, and the operator/register structure.
    """
    return {
        "name": design.name,
        "kind": design.kind,
        "coefficients": np.asarray(design.coefficients, dtype=np.float64),
        "input_fmt": [design.input_fmt.width, design.input_fmt.frac],
        "acc_frac": design.acc_frac,
        "operators": design.adder_count,
        "registers": design.register_count,
        "nodes": len(design.graph.nodes),
    }


#: Gate-kind codes for netlist fingerprints (stable across releases).
_GATE_KIND_CODES = {"xor": 0, "and": 1, "or": 2, "not": 3, "buf": 4}


def netlist_fingerprint(nl) -> Dict[str, Any]:
    """Content fingerprint of a :class:`~repro.gates.netlist.GateNetlist`.

    Hashes the complete evaluable structure — gate kinds and
    connectivity, flip-flops, element order, and the input/output net
    lists — so two netlists fingerprint equal iff they simulate
    identically.  Net names and cell-site maps are excluded: they label
    faults but never change a waveform.
    """
    ins_flat: list = []
    for g in nl.gates:
        ins_flat.extend(g.ins)
        ins_flat.append(-1)  # arity separator
    return {
        "nets": int(nl.net_count),
        "gate_kind": np.array([_GATE_KIND_CODES[g.kind] for g in nl.gates],
                              dtype=np.int8),
        "gate_out": np.array([g.out for g in nl.gates], dtype=np.int64),
        "gate_ins": np.array(ins_flat, dtype=np.int64),
        "dff": np.array([(d.d, d.q) for d in nl.dffs],
                        dtype=np.int64).reshape(len(nl.dffs), 2),
        "elements": np.array(
            [(0 if kind == "gate" else 1, idx) for kind, idx in nl.elements],
            dtype=np.int64).reshape(len(nl.elements), 2),
        "input_bits": np.array(nl.input_bits, dtype=np.int64),
        "output_bits": np.array(nl.output_bits, dtype=np.int64),
    }


def stimulus_fingerprint(raw) -> Dict[str, Any]:
    """Content fingerprint of a raw input-sample sequence."""
    arr = np.ascontiguousarray(raw, dtype=np.int64)
    return {"raw": arr, "n_vectors": int(arr.shape[0])}


def generator_fingerprint(gen) -> Dict[str, Any]:
    """Content fingerprint of a test generator.

    Generators are deterministic given their constructor arguments, and
    every session starts from ``reset()``; class identity plus the
    public scalar attributes (width, polynomial, seed, switch point ...)
    therefore pins the whole output sequence.
    """
    attrs = {
        k: v for k, v in sorted(vars(gen).items())
        if not k.startswith("_")
        and isinstance(v, (bool, int, float, str, np.integer, np.floating))
    }
    return {
        "class": f"{type(gen).__module__}.{type(gen).__qualname__}",
        "name": gen.name,
        "width": gen.width,
        "attrs": attrs,
    }
