"""Content-addressed artifact server (``repro artifacts serve``).

A deliberately small stdlib HTTP server that fronts a
:class:`~repro.cache.backends.LocalStore` so a fleet of workers shares
one pool of compiled netlists, goldens and net-wave matrices.  Because
entries are content-addressed (the key *is* the hash of everything that
determines the artifact), the protocol needs no coordination: a ``PUT``
of an existing key is an idempotent no-op-equivalent overwrite of
identical bytes, concurrent writers cannot conflict, and readers can
never observe a torn entry (the store's atomic-rename discipline).

Routes
------
``GET    /v1/artifacts/{kind}/{key}``   entry bytes (404 on miss)
``HEAD   /v1/artifacts/{kind}/{key}``   existence + size probe
``PUT    /v1/artifacts/{kind}/{key}``   store an entry (201)
``DELETE /v1/artifacts/{kind}/{key}``   drop an entry (204)
``GET    /healthz``                     ``{"status": "ok", ...}``
``GET    /metrics``                     request/byte counters (JSON)

Retention lives server-side: the store's LRU size cap is enforced after
every write, so clients (:class:`~repro.cache.backends.HttpStore`)
never evict.
"""

from __future__ import annotations

import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..errors import CacheError
from .backends import LocalStore

__all__ = ["ArtifactServer"]

logger = logging.getLogger(__name__)

#: Largest accepted entry: net-wave matrices for a full-length LP run
#: are tens of MB compressed; 1 GiB is a generous ceiling.
MAX_ARTIFACT_BYTES = 1 << 30

_ARTIFACT_PATH = re.compile(
    r"^/v1/artifacts/([A-Za-z0-9._-]+)/([A-Za-z0-9._-]+)$")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-artifacts/1"
    protocol_version = "HTTP/1.1"

    # The owning ArtifactServer injects these via the server object.
    @property
    def store(self) -> LocalStore:
        return self.server.artifact_store  # type: ignore[attr-defined]

    @property
    def stats(self) -> Dict[str, int]:
        return self.server.artifact_stats  # type: ignore[attr-defined]

    def _bump(self, name: str, n: int = 1) -> None:
        with self.server.artifact_lock:  # type: ignore[attr-defined]
            self.stats[name] = self.stats.get(name, 0) + n

    def _reply(self, status: int, body: bytes = b"",
               content_type: str = "application/octet-stream") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD" and body:
            self.wfile.write(body)

    def _reply_json(self, status: int, doc: Dict[str, object]) -> None:
        self._reply(status, json.dumps(doc).encode("utf-8"),
                    content_type="application/json")

    def _entry(self) -> Optional[Tuple[str, str]]:
        match = _ARTIFACT_PATH.match(self.path)
        if match is None:
            return None
        return match.group(1), match.group(2)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            entries = self.store.entries()
            self._reply_json(200, {
                "status": "ok",
                "root": self.store.root,
                "entries": len(entries),
                "bytes": sum(size for _p, _m, size in entries),
            })
            return
        if self.path == "/metrics":
            with self.server.artifact_lock:  # type: ignore[attr-defined]
                doc = dict(self.stats)
            self._reply_json(200, doc)
            return
        entry = self._entry()
        if entry is None:
            self._reply_json(404, {"error": "not found", "status": 404})
            return
        data = self.store.get(*entry)
        if data is None:
            self._bump("artifacts.miss")
            self._reply_json(404, {"error": "no such artifact",
                                   "status": 404})
            return
        self._bump("artifacts.hit")
        self._bump("artifacts.bytes_out", len(data))
        self._reply(200, data)

    def do_HEAD(self) -> None:  # noqa: N802
        entry = self._entry()
        data = self.store.get(*entry) if entry is not None else None
        if data is None:
            self._reply(404)
        else:
            self._reply(200, data)  # body suppressed for HEAD

    def do_PUT(self) -> None:  # noqa: N802
        entry = self._entry()
        if entry is None:
            self._reply_json(404, {"error": "not found", "status": 404})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if not 0 <= length <= MAX_ARTIFACT_BYTES:
            self._reply_json(413, {"error": "artifact too large",
                                   "status": 413})
            return
        data = self.rfile.read(length)
        if len(data) != length:
            self._reply_json(400, {"error": "truncated body",
                                   "status": 400})
            return
        self.store.put(*entry, data)
        self.store.evict(self.server.artifact_max_bytes)  # type: ignore[attr-defined]
        self._bump("artifacts.store")
        self._bump("artifacts.bytes_in", len(data))
        self._reply_json(201, {"stored": f"{entry[0]}/{entry[1]}",
                               "bytes": len(data)})

    def do_DELETE(self) -> None:  # noqa: N802
        entry = self._entry()
        if entry is None:
            self._reply_json(404, {"error": "not found", "status": 404})
            return
        self.store.delete(*entry)
        self._bump("artifacts.delete")
        self._reply(204)

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("artifacts: " + fmt, *args)


class ArtifactServer:
    """Owns the HTTP server + store; usable blocking or as a context
    manager running in a background thread (tests, in-process fleets).
    """

    def __init__(self, root: str, *, host: str = "127.0.0.1",
                 port: int = 0, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        self.store = LocalStore(root)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.artifact_store = self.store  # type: ignore[attr-defined]
        self.httpd.artifact_stats = {}  # type: ignore[attr-defined]
        self.httpd.artifact_lock = threading.Lock()  # type: ignore[attr-defined]
        self.httpd.artifact_max_bytes = max_bytes  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def stats(self) -> Dict[str, int]:
        with self.httpd.artifact_lock:  # type: ignore[attr-defined]
            return dict(self.httpd.artifact_stats)  # type: ignore[attr-defined]

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()

    def __enter__(self) -> "ArtifactServer":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-artifacts", daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
