"""Cross-process trace propagation.

A :class:`TraceContext` is the tiny, picklable handle a dispatching
process injects into work it ships elsewhere — a pool chunk, a service
job — naming the trace and the span the remote work belongs under.  The
remote side runs its chunk inside :func:`child_collector`, a lightweight
:class:`~repro.telemetry.collector.Telemetry` scoped to that chunk, and
ships the finished spans plus metric deltas back as one payload dict.
The parent merges the payload with
:meth:`Telemetry.absorb() <repro.telemetry.collector.Telemetry.absorb>`,
re-parenting the worker spans under the dispatching span — one tree,
end to end, no matter how many processes the work crossed.

Span ``start`` times are :func:`time.perf_counter` readings; on Linux
that is ``CLOCK_MONOTONIC``, which is system-wide, so parent and worker
timestamps share a timeline on one machine (the only place a process
pool runs).

Usage, parent side::

    ctx = TraceContext.current()          # None when telemetry is off
    ...ship (fn, chunk, ctx) to the worker...
    tel.absorb(payload)                   # merge what came back

worker side::

    with child_collector(ctx) as child:
        out = [fn(item) for item in chunk]
    return out, child.payload             # None when ctx was None
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Dict, Optional

from .collector import Telemetry, get_telemetry, use_telemetry
from .sinks import InMemorySink

__all__ = ["TraceContext", "child_collector", "collector_payload"]


@dataclass(frozen=True)
class TraceContext:
    """Serializable pointer to "where this work hangs in the trace"."""

    trace_id: str
    span_id: Optional[str] = None

    @classmethod
    def current(cls) -> Optional["TraceContext"]:
        """The context of the innermost open span of the current
        collector, or ``None`` when telemetry is disabled."""
        tel = get_telemetry()
        if not tel.enabled:
            return None
        span = tel.current_span
        return cls(trace_id=tel.trace_id,
                   span_id=None if span is None else span.sid)


def collector_payload(tel: Telemetry,
                      span_events: Optional[list] = None) -> Dict[str, object]:
    """A collector's session as one merge-ready payload dict.

    ``span_events`` overrides the span-event list (e.g. an
    :class:`~repro.telemetry.sinks.InMemorySink`'s buffer, which has
    them already flat); by default the finished span forest is walked.
    """
    if span_events is None:
        span_events = []
        stack = list(tel.roots)
        while stack:
            span = stack.pop()
            span_events.append(span.to_event())
            stack.extend(span.children)
    return {
        "spans": list(span_events),
        "metrics": [inst.to_event() for inst in tel.metrics().values()],
        "progress": tel.progress_streams.events(),
        "pid": os.getpid(),
    }


class _ChildHandle:
    """What :func:`child_collector` yields; ``payload`` fills at exit."""

    __slots__ = ("payload",)

    def __init__(self) -> None:
        self.payload: Optional[Dict[str, object]] = None


@contextlib.contextmanager
def child_collector(ctx: Optional[TraceContext], *, on_progress=None):
    """Run a region under a per-chunk child collector.

    With ``ctx=None`` (telemetry disabled in the dispatching process)
    this is a no-op passthrough and the handle's ``payload`` stays
    ``None`` — the zero-cost discipline extends across processes.
    Otherwise a fresh :class:`Telemetry` joins ``ctx``'s trace, becomes
    the context-local current collector for the region, and the handle's
    ``payload`` holds the merge-ready spans + metric deltas + progress
    stream states on exit.

    ``on_progress`` subscribes to the child's live progress updates for
    the duration of the region — this is how a same-process dispatcher
    (the evaluation service's executor threads) observes a running
    job's progress *before* the payload lands; cross-process dispatch
    gets the final states via the payload merge instead.  Progress is
    an operational signal, not a profiling one, so ``on_progress``
    forces a collector even with ``ctx=None``: the region still runs
    instrumented (under a fresh throwaway trace) and the listener fires
    live, but ``payload`` stays ``None`` — there is no parent trace to
    merge into.
    """
    handle = _ChildHandle()
    if ctx is None:
        if on_progress is None:
            yield handle
            return
        # Progress-only side channel: nothing is exported or merged,
        # the collector exists solely so tel.progress() has a home.
        child = Telemetry(sinks=[])
        child.on_progress(on_progress)
        with use_telemetry(child):
            yield handle
        return
    sink = InMemorySink()
    child = Telemetry(sinks=[sink], trace_id=ctx.trace_id,
                      parent_span_id=ctx.span_id)
    if on_progress is not None:
        child.on_progress(on_progress)
    with use_telemetry(child):
        try:
            yield handle
        finally:
            handle.payload = collector_payload(
                child, span_events=sink.span_events())
