"""Live progress streams: the third telemetry channel.

Spans answer "where did the time go" *after* a region finishes and
metrics accumulate totals; neither tells an operator how far a
ten-minute fault-grading job has got *right now*.  A progress stream
does: a named, monotone ``done / total`` cursor with free-form numeric
fields riding along (running coverage, faults dropped), published
through :meth:`Telemetry.progress()
<repro.telemetry.collector.Telemetry.progress>` and consumed three
ways:

* **listeners** — in-process subscribers (the evaluation service
  forwards updates onto job documents and the ``/v1/events`` SSE
  stream);
* **sinks** — every update is also a flat ``progress`` event, so JSONL
  traces replay the stream;
* **payloads** — child collectors ship their latest stream states
  across process boundaries exactly like spans and metric deltas, and
  :meth:`Telemetry.absorb() <repro.telemetry.collector.Telemetry.absorb>`
  merges them monotonically (``done`` never moves backwards), so a
  crashed-then-fallback pool chunk cannot rewind a stream.

The paper's own method motivates the shape of the stream: detection
quality is predicted and tracked *over test length* (PAPER.md §1.3),
not only inspected at the final verdict, so the natural progress unit
for grading work is "faults finalized so far" with the running coverage
as a field.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = ["ProgressState", "ProgressStream", "progress_eta"]

#: Fields a progress event always carries; everything else in the
#: update is a free-form numeric annotation (coverage, dropped, ...).
CORE_FIELDS = ("type", "name", "done", "total", "unix", "elapsed_seconds")


def progress_eta(done: float, total: Optional[float],
                 elapsed: float) -> Optional[float]:
    """Remaining-seconds estimate from a linear rate, or ``None``.

    Undefined until work has both a total and a positive rate; the
    estimate is clamped at zero so completed streams never report a
    negative tail.
    """
    if not total or done <= 0 or elapsed <= 0:
        return None
    rate = done / elapsed
    return max(0.0, (total - done) / rate)


@dataclass
class ProgressState:
    """The latest snapshot of one named stream."""

    name: str
    done: float = 0.0
    total: Optional[float] = None
    started: float = field(default_factory=time.monotonic)
    updated_unix: float = 0.0
    elapsed_seconds: float = 0.0
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def fraction(self) -> Optional[float]:
        if not self.total:
            return None
        return min(1.0, self.done / self.total)

    @property
    def rate(self) -> Optional[float]:
        if self.done <= 0 or self.elapsed_seconds <= 0:
            return None
        return self.done / self.elapsed_seconds

    @property
    def eta_seconds(self) -> Optional[float]:
        return progress_eta(self.done, self.total, self.elapsed_seconds)

    def to_event(self) -> Dict[str, Any]:
        """The flat ``progress`` event shipped to sinks and payloads."""
        event: Dict[str, Any] = {
            "type": "progress",
            "name": self.name,
            "done": self.done,
            "total": self.total,
            "unix": self.updated_unix,
            "elapsed_seconds": self.elapsed_seconds,
        }
        event.update(self.fields)
        return event

    def to_doc(self) -> Dict[str, Any]:
        """The JSON document surfaced on service job snapshots."""
        doc: Dict[str, Any] = {"done": self.done, "total": self.total,
                               "updated_unix": self.updated_unix}
        if self.fraction is not None:
            doc["fraction"] = round(self.fraction, 6)
        if self.rate is not None:
            doc["rate"] = self.rate
        eta = self.eta_seconds
        if eta is not None:
            doc["eta_seconds"] = eta
        doc.update(self.fields)
        return doc


class ProgressStream:
    """Per-collector registry of named progress states.

    Owned by a :class:`~repro.telemetry.collector.Telemetry`; user code
    goes through ``tel.progress(name, done, total=...)`` rather than
    holding a stream directly.  Updates are monotone per name: ``done``
    only advances (merging a stale cross-process snapshot is a no-op),
    annotation fields adopt the newest values.
    """

    def __init__(self) -> None:
        self._states: Dict[str, ProgressState] = {}
        self._listeners: list = []

    # ------------------------------------------------------------------
    def update(self, name: str, done: float,
               total: Optional[float] = None,
               **fields: Any) -> ProgressState:
        """Advance stream ``name`` to ``done`` (monotone) and publish."""
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = ProgressState(name=name)
        if total is not None:
            state.total = float(total)
        state.done = max(state.done, float(done))
        state.updated_unix = time.time()
        state.elapsed_seconds = max(0.0, time.monotonic() - state.started)
        for key, value in fields.items():
            if value is not None:
                state.fields[key] = value
        return state

    def merge_event(self, event: Dict[str, Any]) -> ProgressState:
        """Fold a shipped ``progress`` event into this registry.

        Cross-process merge discipline: ``done`` is max-merged,
        ``total`` adopted when present, extra fields adopted — so
        replayed or out-of-order snapshots (e.g. a pool chunk that
        crashed and was re-run serially in the parent) never rewind a
        stream.
        """
        fields = {k: v for k, v in event.items() if k not in CORE_FIELDS}
        return self.update(str(event["name"]), float(event["done"] or 0.0),
                           event.get("total"), **fields)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[ProgressState]:
        return self._states.get(name)

    def states(self) -> Dict[str, ProgressState]:
        return dict(self._states)

    def events(self) -> list:
        """Latest state of every stream as payload-ready events."""
        return [state.to_event() for state in self._states.values()]

    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[ProgressState], None]
                  ) -> Callable[[], None]:
        """Register ``listener`` for every update; returns a remover."""
        self._listeners.append(listener)

        def _remove() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass
        return _remove

    def notify(self, state: ProgressState) -> None:
        for listener in list(self._listeners):
            listener(state)
