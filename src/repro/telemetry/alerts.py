"""Declarative SLO alert rules over merged fleet metrics.

A rule names a metric in the flat value map produced by
:meth:`FleetView.merged_values
<repro.telemetry.fleet.FleetView.merged_values>` (or any other flat
``{name: number}`` source, e.g. a loadtest report), a comparison and a
threshold::

    {"schema": "repro-alert-rules/1",
     "rules": [
       {"name": "dead-workers", "metric": "fleet.workers.dead",
        "op": ">=", "threshold": 1, "severity": "page",
        "description": "a worker stopped heartbeating"},
       {"name": "slow-requests", "metric": "service.request_seconds.p99",
        "op": ">", "threshold": 2.0, "for_beats": 3}
     ]}

The :class:`AlertEngine` evaluates every rule on each heartbeat and
keeps per-rule state, so a rule **fires** only after ``for_beats``
consecutive breaches (burn-rate style debouncing) and **resolves** on
the first clean evaluation — each transition is returned as an
``alert.fired`` / ``alert.resolved`` event for the SSE stream and the
run ledger.  :func:`check_rules` is the stateless one-shot variant
behind ``repro alerts check``, the CLI/CI gate.
"""

from __future__ import annotations

import json
import operator
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["ALERT_RULES_SCHEMA", "AlertError", "AlertRule", "AlertEngine",
           "parse_rules", "load_rules", "check_rules"]

ALERT_RULES_SCHEMA = "repro-alert-rules/1"

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_SEVERITIES = ("warn", "page")
_MISSING = ("skip", "fire")


class AlertError(ReproError):
    """A malformed alert rule or rule file."""


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over one flat metric."""

    name: str
    metric: str
    op: str
    threshold: float
    for_beats: int = 1
    severity: str = "warn"
    description: str = ""
    #: What a missing metric means: ``skip`` (no data, no verdict) or
    #: ``fire`` (absence itself is the failure, e.g. a faults/s floor
    #: while nothing is grading at all).
    missing: str = "skip"

    def breached(self, values: Dict[str, float]) -> Optional[bool]:
        """``True``/``False`` verdict, or ``None`` when skipped."""
        value = values.get(self.metric)
        if value is None:
            return None if self.missing == "skip" else True
        return _OPS[self.op](float(value), self.threshold)

    def describe(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"

    def to_doc(self) -> Dict[str, Any]:
        return {"name": self.name, "metric": self.metric, "op": self.op,
                "threshold": self.threshold, "for_beats": self.for_beats,
                "severity": self.severity,
                "description": self.description, "missing": self.missing}


def parse_rules(doc: Any) -> List[AlertRule]:
    """Validate a rule document into :class:`AlertRule` objects."""
    if not isinstance(doc, dict):
        raise AlertError("alert rules must be a JSON object")
    schema = doc.get("schema", ALERT_RULES_SCHEMA)
    if schema != ALERT_RULES_SCHEMA:
        raise AlertError(f"unknown alert rules schema {schema!r}; "
                         f"expected {ALERT_RULES_SCHEMA}")
    raw = doc.get("rules")
    if not isinstance(raw, list) or not raw:
        raise AlertError("alert rules need a non-empty 'rules' list")
    rules: List[AlertRule] = []
    seen: set = set()
    for i, entry in enumerate(raw):
        where = f"rule #{i + 1}"
        if not isinstance(entry, dict):
            raise AlertError(f"{where}: must be an object")
        for key in ("name", "metric", "op", "threshold"):
            if key not in entry:
                raise AlertError(f"{where}: missing {key!r}")
        name = str(entry["name"])
        where = f"rule {name!r}"
        if name in seen:
            raise AlertError(f"{where}: duplicate rule name")
        seen.add(name)
        op = str(entry["op"])
        if op not in _OPS:
            raise AlertError(f"{where}: unknown op {op!r}; use one of "
                             f"{', '.join(sorted(_OPS))}")
        try:
            threshold = float(entry["threshold"])
        except (TypeError, ValueError):
            raise AlertError(f"{where}: threshold must be a number, got "
                             f"{entry['threshold']!r}") from None
        for_beats = int(entry.get("for_beats", 1))
        if for_beats < 1:
            raise AlertError(f"{where}: for_beats must be >= 1")
        severity = str(entry.get("severity", "warn"))
        if severity not in _SEVERITIES:
            raise AlertError(f"{where}: severity must be one of "
                             f"{', '.join(_SEVERITIES)}")
        missing = str(entry.get("missing", "skip"))
        if missing not in _MISSING:
            raise AlertError(f"{where}: missing must be one of "
                             f"{', '.join(_MISSING)}")
        rules.append(AlertRule(
            name=name, metric=str(entry["metric"]), op=op,
            threshold=threshold, for_beats=for_beats, severity=severity,
            description=str(entry.get("description", "")),
            missing=missing))
    return rules


def load_rules(path: str) -> List[AlertRule]:
    """Load and validate a rule file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise AlertError(f"cannot read alert rules {path}: {exc}") \
            from None
    except json.JSONDecodeError as exc:
        raise AlertError(f"{path}: not valid JSON: {exc}") from None
    try:
        return parse_rules(doc)
    except AlertError as exc:
        raise AlertError(f"{path}: {exc}") from None


@dataclass
class _RuleState:
    breaches: int = 0
    firing: bool = False
    fired_unix: Optional[float] = None
    value: Optional[float] = None


class AlertEngine:
    """Stateful evaluator: one state machine per rule."""

    def __init__(self, rules: Optional[List[AlertRule]] = None):
        self.rules = list(rules or [])
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules}
        self.evaluations = 0
        self.fired_total = 0

    def evaluate(self, values: Dict[str, float],
                 now: Optional[float] = None
                 ) -> List[Tuple[str, Dict[str, Any]]]:
        """One evaluation pass; returns fired/resolved transitions."""
        now = time.time() if now is None else now
        self.evaluations += 1
        events: List[Tuple[str, Dict[str, Any]]] = []
        for rule in self.rules:
            state = self._states[rule.name]
            verdict = rule.breached(values)
            state.value = values.get(rule.metric)
            if verdict is None:
                continue  # no data: hold current state
            if verdict:
                state.breaches += 1
                if not state.firing and state.breaches >= rule.for_beats:
                    state.firing = True
                    state.fired_unix = now
                    self.fired_total += 1
                    events.append(("alert.fired", self._doc(rule, state)))
            else:
                state.breaches = 0
                if state.firing:
                    state.firing = False
                    doc = self._doc(rule, state)
                    doc["fired_seconds"] = (
                        None if state.fired_unix is None
                        else max(0.0, now - state.fired_unix))
                    state.fired_unix = None
                    events.append(("alert.resolved", doc))
        return events

    def _doc(self, rule: AlertRule, state: _RuleState) -> Dict[str, Any]:
        return {
            "alert": rule.name,
            "severity": rule.severity,
            "rule": rule.describe(),
            "description": rule.description,
            "value": state.value,
            "threshold": rule.threshold,
            "fired_unix": state.fired_unix,
        }

    def active(self) -> List[Dict[str, Any]]:
        """Currently-firing alerts, for the fleet snapshot."""
        return [self._doc(rule, self._states[rule.name])
                for rule in self.rules
                if self._states[rule.name].firing]


def check_rules(rules: List[AlertRule],
                values: Dict[str, float]) -> List[str]:
    """Stateless one-shot gate: violation strings, empty on pass.

    Ignores ``for_beats`` debouncing — a CI gate sees one sample, so a
    breach in that sample is a failure.  Rules whose metric is absent
    follow their ``missing`` policy.
    """
    failures: List[str] = []
    for rule in rules:
        verdict = rule.breached(values)
        if verdict is None:
            continue
        if verdict:
            value = values.get(rule.metric)
            shown = "no data" if value is None else f"{value:g}"
            failures.append(
                f"{rule.name}: {rule.describe()} breached "
                f"(value {shown})"
                + (f" — {rule.description}" if rule.description else ""))
    return failures
