"""Test-zone tracing: measured evidence for the paper's attenuation claim.

The paper argues (Section 4.1, Table 2, Figure 1) that serious faults
escape BIST because the *primary* (high-variance) input of a
variance-mismatched adder rarely enters the narrow test zones near
±0.5 and ±1 that assert the difficult tests T1/T2/T5/T6.  The
:class:`ZoneTracer` turns that from a prediction into an observation: it
rides the RTL simulator's adder hook and counts, per tracked operator,
how many vectors of a session land in each Figure 1 zone.  The measured
hit rates are directly comparable to
:func:`repro.analysis.testzones.zone_probabilities` computed from a
predicted amplitude distribution.

The primary operand of each operator is chosen per session as the one
with the larger sample variance — the same convention the paper uses to
orient Table 2 (``A`` is the high-variance input).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import TelemetryError

__all__ = ["ZoneTracer"]


class ZoneTracer:
    """Counts per-operator vector landings in the Figure 1 test zones.

    Parameters
    ----------
    nodes:
        Ids of the ADD/SUB nodes to trace (e.g. a design's per-tap
        accumulators).
    beta:
        Secondary-input half-range bounding the zone width, as in
        :func:`repro.analysis.testzones.test_zones`.

    Attach :meth:`hook` as (or inside) an ``adder_hook`` of
    :func:`repro.rtl.simulate.simulate`, or pass the tracer to
    :func:`repro.faultsim.engine.run_fault_coverage`.
    """

    def __init__(self, nodes: Iterable[int], beta: float = 0.25):
        # Imported lazily: analysis pulls in generators/rtl, which are
        # themselves instrumented with this package.
        from ..analysis.testzones import test_zones

        self.beta = beta
        zones = test_zones(beta)
        self.labels: List[str] = list(zones)
        self._lo = np.array([zones[lab][0] for lab in self.labels])
        self._hi = np.array([zones[lab][1] for lab in self.labels])
        self.nodes = set(int(n) for n in nodes)
        if not self.nodes:
            raise TelemetryError("ZoneTracer needs at least one node id")
        self.hits: Dict[int, np.ndarray] = {
            n: np.zeros(len(self.labels), dtype=np.int64) for n in self.nodes}
        self.totals: Dict[int, int] = {n: 0 for n in self.nodes}

    @classmethod
    def for_design(cls, design, beta: float = 0.25) -> "ZoneTracer":
        """Trace a filter design's per-tap accumulator operators."""
        tracer = cls(
            (t.accumulator for t in design.taps if t.accumulator is not None),
            beta=beta,
        )
        tracer.tap_of = {t.accumulator: t.index for t in design.taps
                         if t.accumulator is not None}
        return tracer

    #: Optional node-id -> tap-index mapping used by :meth:`table`.
    tap_of: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def hook(self, node, a: np.ndarray, b: np.ndarray) -> None:
        """Adder-hook callback: classify one operator's session operands."""
        if node.nid not in self.nodes:
            return
        av = node.fmt.normalize(a)
        bv = node.fmt.normalize(b)
        primary = av if av.var() >= bv.var() else bv
        counts = ((primary[None, :] >= self._lo[:, None])
                  & (primary[None, :] < self._hi[:, None])).sum(axis=1)
        self.hits[node.nid] += counts
        self.totals[node.nid] += primary.size

    # ------------------------------------------------------------------
    # Queries and reporting
    # ------------------------------------------------------------------
    def hit_rates(self, node_id: int) -> Dict[str, float]:
        """Per-zone fraction of vectors at one operator, by zone label."""
        if node_id not in self.nodes:
            raise TelemetryError(f"node {node_id} is not traced")
        total = max(1, self.totals[node_id])
        return {label: self.hits[node_id][j] / total
                for j, label in enumerate(self.labels)}

    def publish(self, tel) -> None:
        """Record the collected counts as telemetry counters."""
        if not tel.enabled:
            return
        for nid in sorted(self.nodes):
            tel.counter(f"testzones.node{nid}.vectors").add(self.totals[nid])
            for j, label in enumerate(self.labels):
                tel.counter(f"testzones.node{nid}.{label}").add(
                    int(self.hits[nid][j]))

    def table(self) -> str:
        """Aligned per-operator zone hit-rate table (percentages).

        Rows are ordered by tap index when the tracer was built with
        :meth:`for_design`, else by node id.
        """
        tap_of = self.tap_of or {}
        header = (f"{'tap':>4} {'node':>5} {'vectors':>8}  "
                  + " ".join(f"{label:>7}" for label in self.labels))
        lines = [f"test-zone hit rates (beta={self.beta:g}), % of vectors",
                 header]
        ordered = sorted(self.nodes,
                         key=lambda n: (tap_of.get(n, -1), n))
        for nid in ordered:
            tap = tap_of.get(nid)
            rates = self.hit_rates(nid)
            cells = " ".join(f"{100.0 * rates[label]:>7.3f}"
                             for label in self.labels)
            lines.append(f"{'-' if tap is None else tap:>4} {nid:>5} "
                         f"{self.totals[nid]:>8}  {cells}")
        return "\n".join(lines)
