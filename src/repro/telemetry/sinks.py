"""Pluggable telemetry sinks.

Every sink consumes the same flat event dicts (``span`` events as spans
finish, instrument snapshots at ``flush()``):

* :class:`InMemorySink` retains events for tests and in-process readers;
* :class:`JsonlSink` streams them as JSON Lines to a file
  (the ``--trace-out`` format);
* :class:`LoggingSummarySink` accumulates the session and, at flush,
  logs one human-readable summary through :mod:`logging` (the
  ``--profile`` stderr output).

New sinks subclass :class:`TelemetrySink` and override ``on_event``;
see ``docs/telemetry.md``.
"""

from __future__ import annotations

import json
import logging
from typing import Dict, List, Optional

from .metrics import Histogram
from .spans import Span, format_span_tree

__all__ = [
    "TelemetrySink",
    "InMemorySink",
    "JsonlSink",
    "LoggingSummarySink",
    "RequestLogSink",
    "reconstruct_spans",
    "summarize_metrics",
]

logger = logging.getLogger("repro.telemetry")


class TelemetrySink:
    """Base class: receives every telemetry event as a plain dict."""

    def on_event(self, event: Dict[str, object]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink(TelemetrySink):
    """Retains every event in order — the in-process collector."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def on_event(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def span_events(self) -> List[Dict[str, object]]:
        return [e for e in self.events if e["type"] == "span"]

    def metric_events(self) -> List[Dict[str, object]]:
        return [e for e in self.events if e["type"] != "span"]


def _json_default(obj):
    """Coerce numpy scalars (and anything else stringable) for json."""
    for attr in ("item",):
        if hasattr(obj, attr):
            return obj.item()
    return str(obj)


class JsonlSink(TelemetrySink):
    """Appends one JSON object per line to ``path`` (opened lazily)."""

    def __init__(self, path: str, mode: str = "w"):
        self.path = str(path)
        self.mode = mode
        self._fh = None

    def open(self) -> None:
        """Open the output file now rather than at the first event.

        Lets callers fail fast on an unwritable path before any
        simulation work has been spent.
        """
        if self._fh is None:
            self._fh = open(self.path, self.mode, encoding="utf-8")

    def on_event(self, event: Dict[str, object]) -> None:
        if self._fh is None:
            self.open()
        self._fh.write(json.dumps(event, default=_json_default) + "\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class RequestLogSink(JsonlSink):
    """JSON-lines request log: one record per served request.

    Consumes only the free-form ``request`` events emitted through
    :meth:`Telemetry.event("request", ...)
    <repro.telemetry.collector.Telemetry.event>` — everything else in
    the stream (spans, instrument snapshots) is ignored — and writes
    each as one JSON line.  The evaluation service uses it as the
    access log (``repro serve --access-log``); each record carries at
    least ``route``, ``method``, ``status``, ``latency_ms`` and, where
    the handler knows them, ``client``, a ``cache`` hit/miss marker,
    ``trace_id``/``span_id`` (the serving request span, so a log line
    joins against Chrome-trace exports of the same run) and the
    ``job_id`` the route named or created.

    Opens in append mode by default so restarts extend the log.
    """

    EVENT_TYPE = "request"

    def __init__(self, path: str, mode: str = "a"):
        super().__init__(path, mode=mode)

    def on_event(self, event: Dict[str, object]) -> None:
        if event.get("type") == self.EVENT_TYPE:
            super().on_event(event)
            self.flush()  # access logs should be tail-able live


class LoggingSummarySink(TelemetrySink):
    """Logs a human-readable end-of-session summary via :mod:`logging`.

    Events accumulate until :meth:`flush`, which emits the span tree and
    metric summary as one INFO record on the ``repro.telemetry`` logger
    (stderr under the CLI's default logging configuration) and clears
    the buffer, so repeated flushes do not duplicate output.
    """

    def __init__(self, log: Optional[logging.Logger] = None,
                 level: int = logging.INFO):
        self._log = log or logger
        self._level = level
        self._events: List[Dict[str, object]] = []

    def on_event(self, event: Dict[str, object]) -> None:
        self._events.append(event)

    def flush(self) -> None:
        if not self._events:
            return
        parts = []
        roots = reconstruct_spans(self._events)
        if roots:
            parts.append("span tree:\n" + format_span_tree(roots))
        metrics = summarize_metrics(self._events)
        if metrics:
            parts.append("metrics:\n" + metrics)
        if parts:
            self._log.log(self._level, "telemetry summary\n%s",
                          "\n".join(parts))
        self._events = []


def reconstruct_spans(events: List[Dict[str, object]]) -> List[Span]:
    """Rebuild the span forest from flat span events (id / parent links).

    Span events are emitted when a span *ends*, i.e. children first;
    linking by id restores the tree, and start-time ordering restores
    the call order at each level.
    """
    spans: Dict[str, Span] = {}
    for e in events:
        if e["type"] != "span":
            continue
        sp = Span(name=str(e["name"]), sid=str(e["id"]),
                  parent_id=None if e["parent"] is None else str(e["parent"]),
                  trace_id=str(e.get("trace") or ""),
                  pid=int(e.get("pid") or 0),
                  attrs=dict(e.get("attrs") or {}),
                  start=float(e["start"]))
        sp.end = sp.start + float(e["duration"])
        err = e.get("error")
        sp.error = None if err is None else str(err)
        spans[sp.sid] = sp
    roots: List[Span] = []
    for sp in spans.values():
        parent = spans.get(sp.parent_id) if sp.parent_id is not None else None
        (parent.children if parent is not None else roots).append(sp)
    for sp in spans.values():
        sp.children.sort(key=lambda s: s.start)
    roots.sort(key=lambda s: s.start)
    return roots


def summarize_metrics(events: List[Dict[str, object]]) -> str:
    """Aligned text block for counter/gauge/histogram snapshot events."""
    lines: List[str] = []
    scalars = [e for e in events if e["type"] in ("counter", "gauge")]
    if scalars:
        width = max(len(str(e["name"])) for e in scalars) + 2
        for e in sorted(scalars, key=lambda e: str(e["name"])):
            value = e["value"]
            if isinstance(value, float):
                value = f"{value:,.3f}".rstrip("0").rstrip(".")
            lines.append(f"  {str(e['name']):<{width}}{value}")
    for e in sorted((e for e in events if e["type"] == "histogram"),
                    key=lambda e: str(e["name"])):
        if not e["count"]:
            continue
        mean = e["sum"] / e["count"]
        quantiles = "".join(f" {key}={e[key]:.4g}"
                            for key in ("p50", "p90", "p99") if key in e)
        lines.append(f"  {e['name']}: n={e['count']} mean={mean:.4g} "
                     f"min={e['min']:.4g} max={e['max']:.4g}{quantiles}")
        hist = Histogram(str(e["name"]), edges=e["edges"])
        buckets = [f"{hist.bucket_label(i)}:{c}"
                   for i, c in enumerate(e["counts"]) if c]
        lines.append("    " + "  ".join(buckets))
    return "\n".join(lines)
