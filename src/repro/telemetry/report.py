"""Self-contained HTML run reports from JSONL trace files.

``repro report --trace run.jsonl`` (and ``repro bench --report``) turn
any telemetry trace — a ``--trace-out`` file, a service's trace log —
into one dependency-free HTML page:

* a **waterfall** of the span forest (depth-indented rows, bars scaled
  to the trace's wall-clock extent, per-process colour),
* a **per-stage table** aggregating wall time by span name,
* **cache** hit/miss rates and **parallel** fallback counts pulled from
  the counter snapshots,
* **histogram** summaries (count / mean / p50 / p90 / p99) and
  **test-zone hit** bar charts from the ``testzones.*`` counters.

Everything is inline — no JS, no external CSS — so the file can be
attached to a CI run or mailed around as-is.
"""

from __future__ import annotations

import html
import json
from typing import Dict, Iterable, List, Optional, Tuple

from .sinks import reconstruct_spans
from .spans import Span, format_duration

__all__ = ["load_trace", "render_run_report", "write_run_report"]

#: Waterfall rows are capped so a million-span trace still renders; the
#: truncation is announced in the page.
MAX_WATERFALL_ROWS = 2000

_PROCESS_COLORS = ("#4c78a8", "#f58518", "#54a24b", "#b279a2",
                   "#e45756", "#72b7b2", "#9d755d", "#eeca3b")

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.5em; border-bottom: 2px solid #4c78a8; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: .8em 0; font-size: .9em; }
th, td { border: 1px solid #ccd; padding: .25em .6em; text-align: left; }
th { background: #eef1f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.waterfall { font-size: .8em; }
.wf-row { display: flex; align-items: center; height: 1.4em;
          white-space: nowrap; }
.wf-label { width: 28em; overflow: hidden; text-overflow: ellipsis;
            flex: none; font-family: ui-monospace, monospace; }
.wf-track { position: relative; flex: 1; height: 1em;
            background: #f4f5f8; }
.wf-bar { position: absolute; height: 100%; min-width: 1px;
          border-radius: 2px; }
.wf-dur { width: 6em; flex: none; text-align: right;
          font-variant-numeric: tabular-nums; padding-left: .6em; }
.wf-error { outline: 1.5px solid #d62728; }
.bar-outer { background: #f4f5f8; width: 16em; display: inline-block;
             height: .85em; vertical-align: middle; }
.bar-inner { background: #4c78a8; height: 100%; display: block; }
.note { color: #667; font-size: .85em; }
.legend span { margin-right: 1.2em; }
.swatch { display: inline-block; width: .8em; height: .8em;
          border-radius: 2px; margin-right: .3em; vertical-align: middle; }
"""


def load_trace(path: str) -> List[Dict[str, object]]:
    """Events from a JSONL trace file, blank lines skipped."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _latest_metrics(events: Iterable[Dict[str, object]]
                    ) -> Dict[str, Dict[str, object]]:
    latest: Dict[str, Dict[str, object]] = {}
    for e in events:
        if e.get("type") in ("counter", "gauge", "histogram"):
            latest[str(e["name"])] = e
    return latest


def _flatten(roots: List[Span]) -> List[Tuple[Span, int]]:
    """Depth-first (span, depth) rows in waterfall order."""
    rows: List[Tuple[Span, int]] = []
    stack = [(sp, 0) for sp in reversed(roots)]
    while stack:
        sp, depth = stack.pop()
        rows.append((sp, depth))
        for child in reversed(sp.children):
            stack.append((child, depth + 1))
    return rows


def _pid_colors(rows: List[Tuple[Span, int]]) -> Dict[int, str]:
    colors: Dict[int, str] = {}
    for sp, _ in rows:
        if sp.pid not in colors:
            colors[sp.pid] = _PROCESS_COLORS[
                len(colors) % len(_PROCESS_COLORS)]
    return colors


def _waterfall_section(roots: List[Span]) -> List[str]:
    rows = _flatten(roots)
    if not rows:
        return ["<p class='note'>No spans in this trace.</p>"]
    t0 = min(sp.start for sp, _ in rows)
    t1 = max(sp.end if sp.end is not None else sp.start for sp, _ in rows)
    extent = max(t1 - t0, 1e-9)
    out = ["<h2>Span waterfall</h2>"]
    colors = _pid_colors(rows)
    if len(colors) > 1:
        out.append("<p class='legend'>" + "".join(
            f"<span><i class='swatch' style='background:{color}'></i>"
            f"pid {pid}</span>" for pid, color in colors.items()) + "</p>")
    truncated = len(rows) - MAX_WATERFALL_ROWS
    out.append("<div class='waterfall'>")
    for sp, depth in rows[:MAX_WATERFALL_ROWS]:
        dur = sp.duration
        left = 100.0 * (sp.start - t0) / extent
        width = max(100.0 * dur / extent, 0.05)
        label = html.escape(sp.name)
        indent = depth * 1.1
        err = " wf-error" if sp.error else ""
        title = html.escape(
            f"{sp.name} — {format_duration(dur)}"
            + (f" — {sp.error}" if sp.error else ""))
        out.append(
            f"<div class='wf-row' title='{title}'>"
            f"<div class='wf-label' style='padding-left:{indent:.1f}em'>"
            f"{label}</div>"
            f"<div class='wf-track'><div class='wf-bar{err}' "
            f"style='left:{left:.3f}%;width:{width:.3f}%;"
            f"background:{colors[sp.pid]}'></div></div>"
            f"<div class='wf-dur'>{format_duration(dur)}</div>"
            f"</div>")
    out.append("</div>")
    if truncated > 0:
        out.append(f"<p class='note'>… {truncated} more span rows "
                   f"truncated (showing first {MAX_WATERFALL_ROWS}).</p>")
    return out


def _stage_table(roots: List[Span]) -> List[str]:
    agg: Dict[str, List[float]] = {}
    for sp, _ in _flatten(roots):
        entry = agg.setdefault(sp.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += sp.duration
        entry[2] = max(entry[2], sp.duration)
    if not agg:
        return []
    out = ["<h2>Wall time by stage</h2>",
           "<table><tr><th>span</th><th>count</th><th>total</th>"
           "<th>mean</th><th>max</th></tr>"]
    for name, (n, total, peak) in sorted(agg.items(),
                                         key=lambda kv: -kv[1][1]):
        out.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td class='num'>{n}</td>"
            f"<td class='num'>{format_duration(total)}</td>"
            f"<td class='num'>{format_duration(total / n)}</td>"
            f"<td class='num'>{format_duration(peak)}</td></tr>")
    out.append("</table>")
    return out


def _rate_row(label: str, hits: float, misses: float) -> str:
    total = hits + misses
    rate = f"{100.0 * hits / total:.1f}%" if total else "–"
    return (f"<tr><td>{html.escape(label)}</td>"
            f"<td class='num'>{hits:g}</td><td class='num'>{misses:g}</td>"
            f"<td class='num'>{rate}</td></tr>")


def _cache_pair(hit_name: str) -> Optional[Tuple[str, str]]:
    """``(miss_counter, row_label)`` for a hit counter, matching either
    convention: ``<x>.hits``/``<x>.misses`` or the cache store's
    ``cache.hit[.kind]``/``cache.miss[.kind]`` and
    ``cache.remote_hit[.kind]``/``cache.remote_miss[.kind]``."""
    if hit_name.endswith(".hits"):
        stem = hit_name[: -len(".hits")]
        return stem + ".misses", stem
    for prefix, label in (("cache.remote_hit", "cache.remote"),
                          ("cache.hit", "cache")):
        if hit_name == prefix or hit_name.startswith(prefix + "."):
            suffix = hit_name[len(prefix):]
            return prefix.replace("hit", "miss") + suffix, label + suffix
    return None


def _cache_section(metrics: Dict[str, Dict[str, object]]) -> List[str]:
    pairs: List[Tuple[str, float, float]] = []
    for name, e in sorted(metrics.items()):
        if e["type"] != "counter":
            continue
        pair = _cache_pair(name)
        if pair is None:
            continue
        miss_name, label = pair
        miss = metrics.get(miss_name)
        # A fully-warm cache never instantiates its miss counter; that
        # is 0 misses, not "no cache activity".
        misses = (float(miss["value"])  # type: ignore[arg-type]
                  if miss is not None and miss["type"] == "counter"
                  else 0.0)
        pairs.append((label,
                      float(e["value"]),  # type: ignore[arg-type]
                      misses))
    if not pairs:
        return []
    out = ["<h2>Cache hit rates</h2>",
           "<table><tr><th>cache</th><th>hits</th><th>misses</th>"
           "<th>hit rate</th></tr>"]
    out.extend(_rate_row(label, h, m) for label, h, m in pairs)
    out.append("</table>")
    return out


def _parallel_section(metrics: Dict[str, Dict[str, object]]) -> List[str]:
    names = [n for n in metrics
             if n.startswith("parallel.") and metrics[n]["type"] == "counter"]
    if not names:
        return []
    out = ["<h2>Parallel execution</h2>",
           "<table><tr><th>counter</th><th>value</th></tr>"]
    for name in sorted(names):
        out.append(f"<tr><td>{html.escape(name)}</td>"
                   f"<td class='num'>{metrics[name]['value']}</td></tr>")
    out.append("</table>")
    return out


def _gates_section(metrics: Dict[str, Dict[str, object]]) -> List[str]:
    names = [n for n in metrics
             if n.startswith("gates.") and metrics[n]["type"] == "counter"]
    if not names:
        return []
    out = ["<h2>Gate-level fault sim</h2>",
           "<table><tr><th>counter</th><th>value</th></tr>"]
    for name in sorted(names):
        out.append(f"<tr><td>{html.escape(name)}</td>"
                   f"<td class='num'>{metrics[name]['value']}</td></tr>")
    out.append("</table>")
    return out


def _histogram_section(metrics: Dict[str, Dict[str, object]]) -> List[str]:
    rows = []
    for name, e in sorted(metrics.items()):
        if e["type"] != "histogram" or not e.get("count"):
            continue
        mean = float(e["sum"]) / float(e["count"])  # type: ignore[arg-type]
        cells = [f"<td>{html.escape(name)}</td>",
                 f"<td class='num'>{e['count']}</td>",
                 f"<td class='num'>{mean:.4g}</td>"]
        for key in ("p50", "p90", "p99"):
            value = e.get(key)
            cells.append("<td class='num'>"
                         + (f"{value:.4g}" if value is not None else "–")
                         + "</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")
    if not rows:
        return []
    return (["<h2>Latency histograms</h2>",
             "<table><tr><th>histogram</th><th>n</th><th>mean</th>"
             "<th>p50</th><th>p90</th><th>p99</th></tr>"]
            + rows + ["</table>"])


def _testzone_section(metrics: Dict[str, Dict[str, object]]) -> List[str]:
    zones = [(n, float(e["value"]))  # type: ignore[arg-type]
             for n, e in sorted(metrics.items())
             if n.startswith("testzones.") and e["type"] == "counter"]
    if not zones:
        return []
    peak = max(v for _, v in zones) or 1.0
    out = ["<h2>Test-zone hits</h2>",
           "<table><tr><th>zone</th><th>hits</th><th></th></tr>"]
    for name, value in zones:
        pct = 100.0 * value / peak
        out.append(
            f"<tr><td>{html.escape(name)}</td><td class='num'>{value:g}</td>"
            f"<td><span class='bar-outer'><span class='bar-inner' "
            f"style='width:{pct:.1f}%'></span></span></td></tr>")
    out.append("</table>")
    return out


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def render_run_report(events: List[Dict[str, object]], *,
                      title: str = "repro run report") -> str:
    """The full HTML page for a trace's events."""
    span_events = [e for e in events if e.get("type") == "span"]
    roots = reconstruct_spans(events)
    metrics = _latest_metrics(events)
    trace_id = next((str(e["trace"]) for e in span_events
                     if e.get("trace")), "")
    pids = sorted({int(e.get("pid") or 0) for e in span_events})

    body: List[str] = [f"<h1>{html.escape(title)}</h1>"]
    facts = [f"{len(span_events)} spans", f"{len(metrics)} metrics"]
    if trace_id:
        facts.insert(0, f"trace <code>{html.escape(trace_id)}</code>")
    if pids:
        facts.append(f"{len(pids)} process(es)")
    body.append("<p class='note'>" + " · ".join(facts) + "</p>")
    body.extend(_waterfall_section(roots))
    body.extend(_stage_table(roots))
    body.extend(_cache_section(metrics))
    body.extend(_parallel_section(metrics))
    body.extend(_gates_section(metrics))
    body.extend(_histogram_section(metrics))
    body.extend(_testzone_section(metrics))

    return ("<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_CSS}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


def write_run_report(path: str, events: List[Dict[str, object]], *,
                     title: str = "repro run report") -> None:
    """Render and write the report page to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_run_report(events, title=title))
