"""Typed metric instruments: counters, gauges and histograms.

Instruments are created and owned by a
:class:`~repro.telemetry.collector.Telemetry` collector; user code
fetches them with ``tel.counter(name)`` / ``tel.gauge(name)`` /
``tel.histogram(name)`` and never constructs them directly.  A single
shared no-op instrument backs the disabled collector, so instrumented
hot paths pay one method call that does nothing when telemetry is off.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import TelemetryError

__all__ = ["Counter", "Gauge", "Histogram", "NullInstrument", "NULL_INSTRUMENT"]


class Counter:
    """A monotonically increasing sum.

    Float increments are allowed so the same instrument type serves both
    event counts (vectors, faults, words) and accumulated seconds.
    """

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n=1) -> None:
        if n < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def to_event(self) -> Dict[str, object]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-written value (e.g. a rate computed at the end of a stage)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value

    def to_event(self) -> Dict[str, object]:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``edges`` are the inner bucket boundaries, strictly increasing:
    ``len(edges) + 1`` buckets, where bucket ``i`` counts values in
    ``[edges[i-1], edges[i])`` and the first/last buckets are open-ended.
    The default edges suit wall-time observations in seconds.
    """

    kind = "histogram"
    DEFAULT_EDGES = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

    def __init__(self, name: str, edges: Optional[Sequence[float]] = None):
        self.name = name
        self.edges = np.asarray(
            edges if edges is not None else self.DEFAULT_EDGES, dtype=float)
        if self.edges.ndim != 1 or self.edges.size == 0:
            raise TelemetryError(
                f"histogram {name!r} needs a 1-D non-empty edge list")
        if np.any(np.diff(self.edges) <= 0):
            raise TelemetryError(
                f"histogram {name!r} edges must be strictly increasing")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = np.inf
        self.max = -np.inf

    def observe(self, value) -> None:
        self.observe_many([value])

    def observe_many(self, values) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr, side="right")
        np.add.at(self.counts, idx, 1)
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the bucket holding the target rank;
        the open-ended first/last buckets are bounded by the observed
        ``min``/``max``, so estimates never leave the observed range.
        """
        if not 0.0 < q <= 1.0:
            raise TelemetryError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = np.cumsum(self.counts)
        i = int(np.searchsorted(cum, target, side="left"))
        i = min(i, self.counts.size - 1)
        lo = self.min if i == 0 else float(self.edges[i - 1])
        hi = self.max if i == self.counts.size - 1 else float(self.edges[i])
        lo = max(lo, self.min)
        hi = min(hi, self.max)
        if hi <= lo:
            return float(lo)
        below = float(cum[i - 1]) if i > 0 else 0.0
        in_bucket = float(self.counts[i])
        frac = (target - below) / in_bucket if in_bucket else 1.0
        return float(lo + min(max(frac, 0.0), 1.0) * (hi - lo))

    #: The summary quantiles surfaced in events, ``render()`` and the
    #: exporters.
    SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

    def summary(self) -> Dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` estimates."""
        return {f"p{int(round(q * 100))}": self.percentile(q)
                for q in self.SUMMARY_QUANTILES}

    def merge_event(self, event: Dict[str, object]) -> None:
        """Fold another histogram's snapshot event into this one.

        Used when merging worker-process telemetry payloads; both sides
        must have been created with the same bucket edges.
        """
        edges = np.asarray(event["edges"], dtype=float)
        if edges.shape != self.edges.shape or not np.all(edges == self.edges):
            raise TelemetryError(
                f"histogram {self.name!r} bucket edges differ between "
                f"processes; cannot merge")
        counts = np.asarray(event["counts"], dtype=np.int64)
        if counts.shape != self.counts.shape:
            raise TelemetryError(
                f"histogram {self.name!r} bucket counts differ in shape")
        if not event.get("count"):
            return
        self.counts += counts
        self.count += int(event["count"])  # type: ignore[arg-type]
        self.total += float(event["sum"])  # type: ignore[arg-type]
        if event.get("min") is not None:
            self.min = min(self.min, float(event["min"]))  # type: ignore[arg-type]
        if event.get("max") is not None:
            self.max = max(self.max, float(event["max"]))  # type: ignore[arg-type]

    def bucket_label(self, i: int) -> str:
        if i == 0:
            return f"<{self.edges[0]:g}"
        if i == self.counts.size - 1:
            return f">={self.edges[-1]:g}"
        return f"[{self.edges[i - 1]:g},{self.edges[i]:g})"

    def to_event(self) -> Dict[str, object]:
        event: Dict[str, object] = {
            "type": "histogram",
            "name": self.name,
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }
        if self.count:
            event.update(self.summary())
        return event


class NullInstrument:
    """No-op stand-in for every instrument kind (disabled telemetry)."""

    kind = "null"
    __slots__ = ()

    def add(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()
