"""Typed metric instruments: counters, gauges and histograms.

Instruments are created and owned by a
:class:`~repro.telemetry.collector.Telemetry` collector; user code
fetches them with ``tel.counter(name)`` / ``tel.gauge(name)`` /
``tel.histogram(name)`` and never constructs them directly.  A single
shared no-op instrument backs the disabled collector, so instrumented
hot paths pay one method call that does nothing when telemetry is off.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import TelemetryError

__all__ = ["Counter", "Gauge", "Histogram", "NullInstrument", "NULL_INSTRUMENT"]


class Counter:
    """A monotonically increasing sum.

    Float increments are allowed so the same instrument type serves both
    event counts (vectors, faults, words) and accumulated seconds.
    """

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n=1) -> None:
        if n < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def to_event(self) -> Dict[str, object]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-written value (e.g. a rate computed at the end of a stage)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value

    def to_event(self) -> Dict[str, object]:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``edges`` are the inner bucket boundaries, strictly increasing:
    ``len(edges) + 1`` buckets, where bucket ``i`` counts values in
    ``[edges[i-1], edges[i])`` and the first/last buckets are open-ended.
    The default edges suit wall-time observations in seconds.
    """

    kind = "histogram"
    DEFAULT_EDGES = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

    def __init__(self, name: str, edges: Optional[Sequence[float]] = None):
        self.name = name
        self.edges = np.asarray(
            edges if edges is not None else self.DEFAULT_EDGES, dtype=float)
        if self.edges.ndim != 1 or self.edges.size == 0:
            raise TelemetryError(
                f"histogram {name!r} needs a 1-D non-empty edge list")
        if np.any(np.diff(self.edges) <= 0):
            raise TelemetryError(
                f"histogram {name!r} edges must be strictly increasing")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = np.inf
        self.max = -np.inf

    def observe(self, value) -> None:
        self.observe_many([value])

    def observe_many(self, values) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr, side="right")
        np.add.at(self.counts, idx, 1)
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_label(self, i: int) -> str:
        if i == 0:
            return f"<{self.edges[0]:g}"
        if i == self.counts.size - 1:
            return f">={self.edges[-1]:g}"
        return f"[{self.edges[i - 1]:g},{self.edges[i]:g})"

    def to_event(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "name": self.name,
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


class NullInstrument:
    """No-op stand-in for every instrument kind (disabled telemetry)."""

    kind = "null"
    __slots__ = ()

    def add(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()
