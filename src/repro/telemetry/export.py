"""Trace and metric exporters: Chrome-trace JSON and Prometheus text.

Two interchange formats for the telemetry a run collects:

* :func:`chrome_trace_document` / :func:`write_chrome_trace` render span
  events in the ``trace_event`` format that Perfetto and
  ``chrome://tracing`` load directly — every span becomes one complete
  (``"ph": "X"``) event with microsecond ``ts``/``dur`` and the
  emitting process as its ``pid``/``tid`` track, so a pooled run shows
  the parent and each worker side by side on one timeline.
* :func:`prometheus_exposition` renders instrument snapshots in the
  Prometheus text exposition format (version 0.0.4): counters as
  ``_total`` samples, gauges verbatim, histograms with cumulative
  ``_bucket{le=...}`` series plus a derived ``_quantiles`` summary
  carrying the p50/p90/p99 estimates.

Both consume the same flat event dicts every sink sees, so they work
equally on a live collector (via
:func:`~repro.telemetry.propagate.collector_payload`), an
:class:`~repro.telemetry.sinks.InMemorySink` buffer, or a JSONL trace
file read back from disk.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional

__all__ = [
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "prometheus_exposition",
    "prometheus_name",
]


# ----------------------------------------------------------------------
# Chrome trace (trace_event format)
# ----------------------------------------------------------------------
def chrome_trace_events(events: Iterable[Dict[str, object]]
                        ) -> List[Dict[str, object]]:
    """Span events as ``trace_event`` dicts (one ``"X"`` event each).

    Timing is exact: ``ts``/``dur`` are the span's ``start``/``duration``
    in microseconds, and the span/parent/trace ids ride in ``args`` so
    parentage survives the export losslessly.
    """
    out: List[Dict[str, object]] = []
    pids = []
    for e in events:
        if e.get("type") != "span":
            continue
        pid = int(e.get("pid") or 0)
        if pid not in pids:
            pids.append(pid)
        name = str(e["name"])
        args: Dict[str, object] = {
            "id": e["id"],
            "parent": e.get("parent"),
            "trace": e.get("trace"),
        }
        args.update(dict(e.get("attrs") or {}))
        if e.get("error"):
            args["error"] = e["error"]
        out.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": float(e["start"]) * 1e6,
            "dur": float(e["duration"]) * 1e6,
            "pid": pid,
            "tid": pid,
            "args": args,
        })
    # Metadata events label each process track; they carry the same
    # required keys (ph/ts/pid/tid/name) as the timed events.
    for i, pid in enumerate(sorted(pids)):
        role = "parent" if i == 0 else f"worker {i}"
        out.append({
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": pid,
            "args": {"name": f"repro {role} (pid {pid})"},
        })
    return out


def chrome_trace_document(events: Iterable[Dict[str, object]], *,
                          trace_id: Optional[str] = None
                          ) -> Dict[str, object]:
    """The full JSON-object form of the trace (``traceEvents`` + meta)."""
    events = list(events)
    if trace_id is None:
        for e in events:
            if e.get("type") == "span" and e.get("trace"):
                trace_id = str(e["trace"])
                break
    return {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry.export",
            "trace_id": trace_id or "",
        },
    }


def write_chrome_trace(path: str, events: Iterable[Dict[str, object]], *,
                       trace_id: Optional[str] = None) -> None:
    """Write the Chrome-trace JSON document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_document(events, trace_id=trace_id), fh,
                  indent=1)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A telemetry metric name as a valid Prometheus metric name."""
    flat = _NAME_BAD.sub("_", str(name))
    if prefix:
        flat = f"{prefix}_{flat}"
    if not flat or flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _fmt(value: object) -> str:
    """A sample value in exposition syntax (integers stay integral)."""
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_exposition(events: Iterable[Dict[str, object]], *,
                          prefix: str = "repro",
                          help_text: Optional[Dict[str, str]] = None
                          ) -> str:
    """Instrument snapshot events as Prometheus text format 0.0.4.

    Counters become ``<name>_total``, gauges keep their name (unset
    gauges are skipped), histograms emit cumulative ``_bucket{le=...}``
    series with ``_sum``/``_count`` plus a ``_quantiles`` summary with
    the p50/p90/p99 estimates.  Later snapshots of the same metric name
    replace earlier ones, so flushing a collector twice cannot
    double-report.
    """
    help_text = help_text or {}
    latest: Dict[str, Dict[str, object]] = {}
    for e in events:
        if e.get("type") in ("counter", "gauge", "histogram"):
            latest[str(e["name"])] = e

    lines: List[str] = []

    def header(metric: str, kind: str, source: str) -> None:
        doc = help_text.get(source, f"repro telemetry metric {source}")
        lines.append(f"# HELP {metric} {_escape_help(doc)}")
        lines.append(f"# TYPE {metric} {kind}")

    for name in sorted(latest):
        e = latest[name]
        base = prometheus_name(name, prefix)
        if e["type"] == "counter":
            metric = base if base.endswith("_total") else f"{base}_total"
            header(metric, "counter", name)
            lines.append(f"{metric} {_fmt(e['value'])}")
        elif e["type"] == "gauge":
            if e.get("value") is None:
                continue
            header(base, "gauge", name)
            lines.append(f"{base} {_fmt(e['value'])}")
        else:
            header(base, "histogram", name)
            edges = [float(x) for x in e["edges"]]  # type: ignore[index]
            counts = [int(c) for c in e["counts"]]  # type: ignore[index]
            cumulative = 0
            for edge, count in zip(edges, counts):
                cumulative += count
                lines.append(f'{base}_bucket{{le="{edge:g}"}} {cumulative}')
            lines.append(f'{base}_bucket{{le="+Inf"}} {_fmt(e["count"])}')
            lines.append(f"{base}_sum {_fmt(e['sum'])}")
            lines.append(f"{base}_count {_fmt(e['count'])}")
            if all(key in e for key in ("p50", "p90", "p99")):
                summary = f"{base}_quantiles"
                header(summary, "summary", name)
                for key, q in (("p50", "0.5"), ("p90", "0.9"),
                               ("p99", "0.99")):
                    lines.append(
                        f'{summary}{{quantile="{q}"}} {_fmt(e[key])}')
                lines.append(f"{summary}_sum {_fmt(e['sum'])}")
                lines.append(f"{summary}_count {_fmt(e['count'])}")
    return "\n".join(lines) + "\n" if lines else ""
