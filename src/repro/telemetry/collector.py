"""The telemetry collector and the process-wide current collector.

Design goals, in order:

1. **Zero cost when disabled.**  The default current collector is a
   shared :class:`NullTelemetry` whose ``span()`` returns one reusable
   no-op context manager and whose instrument getters return one shared
   no-op instrument — instrumented hot paths pay a dict-free method call
   and nothing else.  Code that would do per-element work to *feed*
   telemetry must guard it with ``if tel.enabled:``.
2. **One collector, many sinks.**  The active :class:`Telemetry` keeps
   the span forest and instruments in memory (for in-process rendering)
   and forwards flat events to its sinks (JSONL file, logging summary,
   test collectors).

Usage::

    from repro.telemetry import get_telemetry, telemetry_session

    with telemetry_session() as tel:        # enable for a region
        run_fault_coverage(...)
        print(tel.render())

    # inside library code
    tel = get_telemetry()
    with tel.span("faultsim.track", vectors=n):
        ...
    tel.counter("faultsim.vectors").add(n)
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import itertools
import logging
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import TelemetryError
from .metrics import NULL_INSTRUMENT, Counter, Gauge, Histogram
from .progress import ProgressState, ProgressStream
from .sinks import TelemetrySink, reconstruct_spans, summarize_metrics
from .spans import Span, format_span_tree, new_trace_id

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "traced",
    "use_telemetry",
]

logger = logging.getLogger("repro.telemetry")


class Telemetry:
    """An enabled collector: hierarchical spans + typed metrics + sinks.

    The active-span stack lives in a :class:`~contextvars.ContextVar`,
    so spans opened on different asyncio tasks or executor threads nest
    correctly within their own context instead of interleaving on one
    shared stack.  Every collector carries a ``trace_id`` (inherited by
    child collectors spawned for worker processes) and hands out string
    span ids that stay unique across processes.
    """

    enabled = True

    def __init__(self, sinks: Optional[Iterable[TelemetrySink]] = None, *,
                 trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None):
        self.sinks: List[TelemetrySink] = list(sinks or ())
        self.roots: List[Span] = []
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.parent_span_id = parent_span_id
        self.progress_streams = ProgressStream()
        self._metrics: Dict[str, object] = {}
        self._sid_prefix = os.urandom(4).hex()
        self._sid = itertools.count(1)
        self._spans_by_id: Dict[str, Span] = {}
        self._stack_var: "contextvars.ContextVar[Tuple[Span, ...]]" = \
            contextvars.ContextVar("repro_telemetry_stack", default=())

    def _next_sid(self) -> str:
        return f"{self._sid_prefix}-{next(self._sid):x}"

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Time a region; nests under the innermost open span."""
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        sp = Span(name=name, sid=self._next_sid(),
                  parent_id=self.parent_span_id if parent is None
                  else parent.sid,
                  trace_id=self.trace_id, pid=os.getpid(),
                  attrs=attrs)
        self._spans_by_id[sp.sid] = sp
        token = self._stack_var.set(stack + (sp,))
        sp.start = time.perf_counter()
        try:
            yield sp
        except BaseException as exc:
            sp.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            sp.end = time.perf_counter()
            self._stack_var.reset(token)
            (self.roots if parent is None else parent.children).append(sp)
            self._emit(sp.to_event())

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def find_span(self, span_id: str) -> Optional[Span]:
        """The (open or finished) span with this id, if this collector
        created or absorbed it."""
        return self._spans_by_id.get(span_id)

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------
    def absorb(self, payload: Optional[Dict[str, object]]) -> None:
        """Merge a child collector's shipped payload into this one.

        ``payload`` is what :func:`repro.telemetry.propagate.child_collector`
        captured in a worker: finished span events plus instrument
        snapshots.  Spans are re-emitted to this collector's sinks and
        grafted into the live tree under the span named by their
        ``parent`` id (the dispatching span); metric snapshots merge
        into this collector's instruments (counters add, gauges adopt
        the child's last value, histograms merge bucket-wise).
        """
        if not payload:
            return
        span_events = list(payload.get("spans") or ())
        for event in span_events:
            self._emit(event)
        for root in reconstruct_spans(span_events):
            self._graft(root)
        for event in payload.get("metrics") or ():
            try:
                self._merge_metric(event)
            except TelemetryError as exc:
                logger.warning("dropping unmergeable child metric %r: %s",
                               event.get("name"), exc)
        for event in payload.get("progress") or ():
            self._emit(event)
            state = self.progress_streams.merge_event(event)
            self.progress_streams.notify(state)

    def _graft(self, root: Span) -> None:
        stack = [root]
        while stack:
            sp = stack.pop()
            self._spans_by_id[sp.sid] = sp
            stack.extend(sp.children)
        parent = None if root.parent_id is None \
            else self._spans_by_id.get(root.parent_id)
        if parent is not None and parent is not root:
            parent.children.append(root)
        else:
            self.roots.append(root)

    def _merge_metric(self, event: Dict[str, object]) -> None:
        kind = event.get("type")
        name = str(event.get("name"))
        if kind == "counter":
            self.counter(name).add(event.get("value") or 0)
        elif kind == "gauge":
            if event.get("value") is not None:
                self.gauge(name).set(event["value"])
        elif kind == "histogram":
            self.histogram(name, edges=event.get("edges")).merge_event(event)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _instrument(self, name: str, cls, *args):
        inst = self._metrics.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._metrics[name] = inst
        elif not isinstance(inst, cls):
            raise TelemetryError(
                f"metric {name!r} is already registered as a {inst.kind}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str,
                  edges: Optional[Sequence[float]] = None) -> Histogram:
        if name in self._metrics:
            return self._instrument(name, Histogram)
        return self._instrument(name, Histogram, edges)

    def metrics(self) -> Dict[str, object]:
        """Snapshot view of all instruments by name."""
        return dict(self._metrics)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def progress(self, name: str, done, total=None,
                 **fields) -> ProgressState:
        """Advance the named progress stream and publish the update.

        ``done`` is monotone per stream (stale updates are no-ops);
        ``total`` and any extra numeric fields (running coverage,
        dropped counts, ...) ride along.  Each update is emitted to the
        sinks as a flat ``progress`` event and pushed to in-process
        subscribers (see :meth:`on_progress`); child collectors ship
        their latest stream states back to the parent in the same
        payload as spans and metrics.
        """
        state = self.progress_streams.update(name, done, total, **fields)
        self.counter("telemetry.progress_updates").add(1)
        self._emit(state.to_event())
        self.progress_streams.notify(state)
        return state

    def on_progress(self, listener) -> "Callable[[], None]":
        """Subscribe to every progress update; returns a remover."""
        return self.progress_streams.subscribe(listener)

    # ------------------------------------------------------------------
    # Sinks and rendering
    # ------------------------------------------------------------------
    def _emit(self, event: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.on_event(event)

    def event(self, kind: str, **fields) -> None:
        """Emit a free-form event straight to the sinks.

        For event families that are neither spans nor instruments —
        e.g. the evaluation service's per-request ``request`` records
        consumed by :class:`~repro.telemetry.sinks.RequestLogSink`.
        ``kind`` becomes the event's ``type`` field; sinks that do not
        recognize it simply pass it through.
        """
        e: Dict[str, object] = {"type": kind}
        e.update(fields)
        self._emit(e)

    def flush(self) -> None:
        """Push instrument snapshots to the sinks and flush them.

        Call once at session end (``telemetry_session`` does); flushing
        mid-run would duplicate metric snapshots in streaming sinks.
        """
        for inst in self._metrics.values():
            self._emit(inst.to_event())
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def render(self, include_metrics: bool = True) -> str:
        """Human-readable span tree (+ metric summary) of the session."""
        parts = [format_span_tree(self.roots)]
        if include_metrics and self._metrics:
            summary = summarize_metrics(
                [inst.to_event() for inst in self._metrics.values()])
            if summary:
                parts.append("metrics:")
                parts.append(summary)
        return "\n".join(parts)


class _NullSpan:
    """Reusable no-op context manager standing in for a Span."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    children: tuple = ()
    error = None
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled collector: every operation is a near-free no-op."""

    enabled = False
    __slots__ = ()
    roots: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current_span(self) -> None:
        return None

    def counter(self, name: str):
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        return NULL_INSTRUMENT

    def histogram(self, name: str, edges=None):
        return NULL_INSTRUMENT

    def metrics(self) -> Dict[str, object]:
        return {}

    def progress(self, name: str, done, total=None, **fields) -> None:
        return None

    def on_progress(self, listener):
        return lambda: None

    def absorb(self, payload: Optional[Dict[str, object]]) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def render(self, include_metrics: bool = True) -> str:
        return "(telemetry disabled)"


NULL_TELEMETRY = NullTelemetry()

_current: Union[Telemetry, NullTelemetry] = NULL_TELEMETRY

#: Context-local override of the process-wide collector.  Worker
#: threads and child-collector sessions install through this so the
#: override is scoped to their own context instead of the whole process.
_override: "contextvars.ContextVar[Optional[Union[Telemetry, NullTelemetry]]]" = \
    contextvars.ContextVar("repro_telemetry_override", default=None)


def get_telemetry() -> Union[Telemetry, NullTelemetry]:
    """The current collector: a context-local override if one is
    installed (see :func:`use_telemetry`), else the process-wide one
    (the no-op collector by default)."""
    override = _override.get()
    return _current if override is None else override


def set_telemetry(
    tel: Optional[Union[Telemetry, NullTelemetry]]
) -> Union[Telemetry, NullTelemetry]:
    """Install ``tel`` (or the null collector for ``None``) process-wide;
    returns the previously installed collector so callers can restore
    it."""
    global _current
    previous = _current
    _current = NULL_TELEMETRY if tel is None else tel
    return previous


@contextlib.contextmanager
def use_telemetry(tel: Union[Telemetry, NullTelemetry]):
    """Make ``tel`` the current collector for this context only.

    Unlike :func:`set_telemetry`, the override is scoped to the calling
    context (thread / asyncio task), so concurrent workers can each run
    under their own child collector without fighting over the global.
    """
    token = _override.set(tel)
    try:
        yield tel
    finally:
        _override.reset(token)


@contextlib.contextmanager
def telemetry_session(sinks: Optional[Iterable[TelemetrySink]] = None,
                      tel: Optional[Telemetry] = None):
    """Enable telemetry for a region, restoring the previous collector.

    Yields the active :class:`Telemetry`; on exit the collector is
    flushed and its sinks closed.
    """
    active = tel if tel is not None else Telemetry(sinks=sinks)
    previous = set_telemetry(active)
    try:
        yield active
    finally:
        set_telemetry(previous)
        active.flush()
        active.close()


def traced(name: str, **attrs):
    """Decorator running the wrapped callable inside a named span."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_telemetry().span(name, **attrs):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
