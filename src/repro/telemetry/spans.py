"""Hierarchical wall-time spans and their text rendering.

A span is one timed region of the pipeline (``faultsim.track``,
``rtl.simulate`` ...).  Spans nest: the collector maintains an active
stack, so a span opened while another is running becomes its child, and
the finished run is a forest of trees whose per-level durations account
for where the wall time went.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "format_duration", "format_span_tree", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id, unique across processes and runs."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One timed region; ``duration`` is valid once the span has ended.

    ``sid`` and ``parent_id`` are stable string ids (collector prefix +
    sequence number), unique across processes, so span trees survive
    serialization and cross-process merging; ``trace_id`` groups every
    span of one logical run and ``pid`` records the emitting process.
    """

    name: str
    sid: str
    parent_id: Optional[str] = None
    trace_id: str = ""
    pid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: Optional[float] = None
    error: Optional[str] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall seconds, 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> None:
        """Attach extra attributes mid-span."""
        self.attrs.update(attrs)

    def to_event(self) -> Dict[str, object]:
        return {
            "type": "span",
            "id": self.sid,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "pid": self.pid,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "error": self.error,
        }


def format_duration(seconds: float) -> str:
    """Compact human-readable wall time (``1.23s``, ``45.6ms``, ``789us``)."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _attr_suffix(span: Span) -> str:
    parts = [f"{k}={v}" for k, v in span.attrs.items()]
    if span.error:
        parts.append(f"error={span.error}")
    return f"  [{' '.join(parts)}]" if parts else ""


def format_span_tree(roots: List[Span]) -> str:
    """ASCII tree of span names with durations and attributes.

    Durations are right-aligned in a column past the longest name so the
    timings can be read top to bottom.
    """
    rows: List[tuple] = []  # (prefix, span)

    def walk(span: Span, prefix: str, child_prefix: str) -> None:
        rows.append((prefix, span))
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            walk(child,
                 child_prefix + ("`- " if last else "|- "),
                 child_prefix + ("   " if last else "|  "))

    for root in roots:
        walk(root, "", "")
    if not rows:
        return "(no spans recorded)"
    name_col = max(len(prefix) + len(span.name) for prefix, span in rows) + 2
    lines = []
    for prefix, span in rows:
        label = f"{prefix}{span.name}"
        lines.append(f"{label:<{name_col}}{format_duration(span.duration):>9}"
                     f"{_attr_suffix(span)}")
    return "\n".join(lines)
