"""Telemetry for the BIST fault-simulation pipeline.

Hierarchical wall-time spans, typed metrics (counters, gauges,
histograms) and pluggable sinks, plus the paper-specific test-zone
tracer.  The pipeline is instrumented throughout (`faultsim`, `gates`,
`rtl`, `generators`, `bist`, `experiments`); all of it is a no-op until
a collector is installed, so grading throughput is unaffected by
default.

Enable for a region::

    from repro.telemetry import telemetry_session

    with telemetry_session() as tel:
        result = run_fault_coverage(design, gen, 4096)
        print(tel.render())          # span tree + metric summary

or from the CLI with ``python -m repro --profile ...``,
``--trace-out trace.jsonl``, or the dedicated ``profile`` command.

See ``docs/telemetry.md`` for naming conventions and how to add a sink.
"""

from .collector import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
    traced,
)
from .metrics import NULL_INSTRUMENT, Counter, Gauge, Histogram
from .sinks import (
    InMemorySink,
    JsonlSink,
    LoggingSummarySink,
    RequestLogSink,
    TelemetrySink,
    reconstruct_spans,
    summarize_metrics,
)
from .spans import Span, format_duration, format_span_tree
from .zones import ZoneTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "LoggingSummarySink",
    "NULL_INSTRUMENT",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RequestLogSink",
    "Span",
    "Telemetry",
    "TelemetrySink",
    "ZoneTracer",
    "format_duration",
    "format_span_tree",
    "get_telemetry",
    "reconstruct_spans",
    "set_telemetry",
    "summarize_metrics",
    "telemetry_session",
    "traced",
]
