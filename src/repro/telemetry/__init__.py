"""Telemetry for the BIST fault-simulation pipeline.

Hierarchical wall-time spans, typed metrics (counters, gauges,
histograms) and pluggable sinks, plus the paper-specific test-zone
tracer.  The pipeline is instrumented throughout (`faultsim`, `gates`,
`rtl`, `generators`, `bist`, `experiments`); all of it is a no-op until
a collector is installed, so grading throughput is unaffected by
default.

Enable for a region::

    from repro.telemetry import telemetry_session

    with telemetry_session() as tel:
        result = run_fault_coverage(design, gen, 4096)
        print(tel.render())          # span tree + metric summary

or from the CLI with ``python -m repro --profile ...``,
``--trace-out trace.jsonl``, or the dedicated ``profile`` command.

See ``docs/telemetry.md`` for naming conventions and how to add a sink.
"""

from .alerts import (
    ALERT_RULES_SCHEMA,
    AlertEngine,
    AlertRule,
    check_rules,
    load_rules,
    parse_rules,
)
from .collector import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
    traced,
    use_telemetry,
)
from .export import (
    chrome_trace_document,
    chrome_trace_events,
    prometheus_exposition,
    write_chrome_trace,
)
from .fleet import (
    FLEET_SCHEMA,
    HEARTBEAT_SCHEMA,
    FleetView,
    WorkerHealth,
    build_heartbeat,
)
from .metrics import NULL_INSTRUMENT, Counter, Gauge, Histogram
from .progress import ProgressState, ProgressStream, progress_eta
from .propagate import TraceContext, child_collector, collector_payload
from .report import load_trace, render_run_report, write_run_report
from .sinks import (
    InMemorySink,
    JsonlSink,
    LoggingSummarySink,
    RequestLogSink,
    TelemetrySink,
    reconstruct_spans,
    summarize_metrics,
)
from .spans import Span, format_duration, format_span_tree, new_trace_id
from .zones import ZoneTracer

__all__ = [
    "ALERT_RULES_SCHEMA",
    "AlertEngine",
    "AlertRule",
    "Counter",
    "FLEET_SCHEMA",
    "FleetView",
    "HEARTBEAT_SCHEMA",
    "WorkerHealth",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "LoggingSummarySink",
    "NULL_INSTRUMENT",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "ProgressState",
    "ProgressStream",
    "RequestLogSink",
    "Span",
    "Telemetry",
    "TelemetrySink",
    "TraceContext",
    "ZoneTracer",
    "build_heartbeat",
    "check_rules",
    "child_collector",
    "chrome_trace_document",
    "chrome_trace_events",
    "collector_payload",
    "format_duration",
    "format_span_tree",
    "get_telemetry",
    "load_rules",
    "load_trace",
    "new_trace_id",
    "parse_rules",
    "progress_eta",
    "prometheus_exposition",
    "reconstruct_spans",
    "render_run_report",
    "set_telemetry",
    "summarize_metrics",
    "telemetry_session",
    "traced",
    "use_telemetry",
    "write_chrome_trace",
    "write_run_report",
]
