"""Fleet health plane: worker heartbeats merged into one live view.

The cluster layer grades one fault universe across many worker
processes, but until now their health was only visible *after* a sweep
(traces grafted at merge time, ledger records on finish).  This module
is the live counterpart: every worker periodically emits a
**heartbeat** — its instrument snapshots, progress cursors, queue
depth, inflight jobs, engine tier, pid/host — and a :class:`FleetView`
on the aggregation side merges the stream into one fleet-level
document.

The merge reuses the established cross-process discipline
(:meth:`Telemetry.absorb <repro.telemetry.collector.Telemetry.absorb>`):

* progress cursors are **max-merged** per worker — a worker that
  restarts mid-stream and re-reports ``done=100`` after ``done=500``
  never rewinds the fleet's cursor;
* instrument snapshots are cumulative per worker, so the *latest
  snapshot supersedes* earlier ones, and per-second **rates** come from
  deltas between consecutive beats (reset on restart so a rebooted
  counter never yields a negative rate);
* aggregation across workers sums counters/rates/gauges and merges
  histograms bucket-wise (:meth:`Histogram.merge_event
  <repro.telemetry.metrics.Histogram.merge_event>`), skipping workers
  whose bucket edges disagree rather than poisoning the fleet view.

Liveness is push-implied: a worker that stops beating transitions
``live -> suspect -> dead`` after ``suspect_misses`` / ``dead_misses``
missed intervals.  State transitions are returned to the caller as
``fleet.*`` events so the service can publish them over SSE and the
cluster coordinator can stop dispatching shards to dead endpoints.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TelemetryError
from .export import prometheus_name
from .metrics import Histogram

__all__ = ["HEARTBEAT_SCHEMA", "FLEET_SCHEMA", "WORKER_STATES",
           "build_heartbeat", "FleetView", "WorkerHealth"]

HEARTBEAT_SCHEMA = "repro-heartbeat/1"
FLEET_SCHEMA = "repro-fleet/1"

#: Liveness states in order of decay.
WORKER_STATES = ("live", "suspect", "dead")

#: Progress streams whose instantaneous rate counts as fault-grading
#: throughput (the ``faults/s`` column in ``repro top``).
FAULT_STREAMS_SUFFIX = ".grade"


def build_heartbeat(tel, *, worker: str, seq: int, interval: float,
                    queue_depth: Optional[int] = None,
                    inflight: Optional[List[str]] = None,
                    engine: Optional[str] = None,
                    started_unix: Optional[float] = None,
                    extra: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """One worker's beat: telemetry snapshots plus operational state.

    ``tel`` may be any collector (including a disabled one, in which
    case the metric and progress sections are empty) — a heartbeat is
    an operational signal first and a metrics carrier second.
    """
    metrics: List[Dict[str, Any]] = []
    progress: List[Dict[str, Any]] = []
    if getattr(tel, "enabled", False):
        metrics = [inst.to_event() for inst in tel.metrics().values()]
        progress = tel.progress_streams.events()
    beat: Dict[str, Any] = {
        "schema": HEARTBEAT_SCHEMA,
        "worker": str(worker),
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "seq": int(seq),
        "interval": float(interval),
        "unix": time.time(),
        "metrics": metrics,
        "progress": progress,
    }
    if queue_depth is not None:
        beat["queue_depth"] = int(queue_depth)
    if inflight is not None:
        beat["inflight"] = list(inflight)
    if engine is not None:
        beat["engine"] = str(engine)
    if started_unix is not None:
        beat["started_unix"] = float(started_unix)
    if extra:
        beat["extra"] = dict(extra)
    return beat


@dataclass
class WorkerHealth:
    """Everything the fleet knows about one worker."""

    worker: str
    pid: int = 0
    host: str = ""
    state: str = "live"
    first_seen: float = 0.0
    last_seen: float = 0.0
    seq: int = 0
    interval: float = 2.0
    beats: int = 0
    restarts: int = 0
    queue_depth: Optional[int] = None
    inflight: List[str] = field(default_factory=list)
    engine: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Latest instrument snapshot per metric name.
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Max-merged progress cursor per stream name.
    progress: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Instantaneous per-second rates (counters and progress cursors),
    #: from deltas between the last two beats.
    rates: Dict[str, float] = field(default_factory=dict)
    # Baseline for rate computation: (unix, {name: value}).
    _prev: Optional[Tuple[float, Dict[str, float]]] = field(
        default=None, repr=False)

    @property
    def faults_per_sec(self) -> float:
        """Grading throughput: summed rates of ``*.grade`` cursors."""
        return sum(rate for name, rate in self.rates.items()
                   if name.endswith(FAULT_STREAMS_SUFFIX))

    def missed_beats(self, now: float) -> float:
        """How many heartbeat intervals have elapsed since the last."""
        if self.last_seen <= 0 or self.interval <= 0:
            return 0.0
        return max(0.0, (now - self.last_seen) / self.interval)

    def to_doc(self, now: Optional[float] = None) -> Dict[str, Any]:
        now = time.time() if now is None else now
        doc: Dict[str, Any] = {
            "worker": self.worker,
            "pid": self.pid,
            "host": self.host,
            "state": self.state,
            "first_seen_unix": self.first_seen,
            "last_seen_unix": self.last_seen,
            "age_seconds": max(0.0, now - self.last_seen),
            "missed_beats": round(self.missed_beats(now), 2),
            "seq": self.seq,
            "interval": self.interval,
            "beats": self.beats,
            "restarts": self.restarts,
            "faults_per_sec": self.faults_per_sec,
            "rates": dict(self.rates),
            "progress": {name: dict(cursor)
                         for name, cursor in self.progress.items()},
        }
        if self.queue_depth is not None:
            doc["queue_depth"] = self.queue_depth
        if self.inflight:
            doc["inflight"] = list(self.inflight)
        if self.engine is not None:
            doc["engine"] = self.engine
        if self.extra:
            doc["extra"] = dict(self.extra)
        return doc


def _scalar_values(events: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
    """Counter name -> value map from a worker's metric snapshots."""
    out: Dict[str, float] = {}
    for name, event in events.items():
        if event.get("type") == "counter" \
                and isinstance(event.get("value"), (int, float)):
            out[name] = float(event["value"])
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")


class FleetView:
    """Delta-merges worker heartbeats into one live fleet document.

    Not thread-safe by itself; the evaluation service calls it only
    from the event loop, the coordinator only from its monitor thread.
    """

    def __init__(self, *, suspect_misses: float = 1.5,
                 dead_misses: float = 2.0,
                 default_interval: float = 2.0):
        if not 0 < suspect_misses <= dead_misses:
            raise TelemetryError(
                f"need 0 < suspect_misses <= dead_misses, got "
                f"{suspect_misses} / {dead_misses}")
        self.suspect_misses = float(suspect_misses)
        self.dead_misses = float(dead_misses)
        self.default_interval = float(default_interval)
        self.workers: Dict[str, WorkerHealth] = {}
        self.beats = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe(self, beat: Dict[str, Any],
                now: Optional[float] = None
                ) -> List[Tuple[str, Dict[str, Any]]]:
        """Fold one heartbeat in; returns ``fleet.*`` events to publish.

        Always yields a ``fleet.heartbeat`` summary; adds a
        ``fleet.worker`` transition event when the beat changed the
        worker's liveness state (e.g. a suspect worker came back).
        """
        if not isinstance(beat, dict) or "worker" not in beat:
            raise TelemetryError("heartbeat must be an object with "
                                 "a 'worker' field")
        schema = beat.get("schema", HEARTBEAT_SCHEMA)
        if schema != HEARTBEAT_SCHEMA:
            raise TelemetryError(
                f"unknown heartbeat schema {schema!r}; expected "
                f"{HEARTBEAT_SCHEMA}")
        now = time.time() if now is None else now
        name = str(beat["worker"])
        health = self.workers.get(name)
        if health is None:
            health = self.workers[name] = WorkerHealth(
                worker=name, first_seen=now,
                interval=self.default_interval)
        previous_state = health.state

        pid = int(beat.get("pid") or 0)
        seq = int(beat.get("seq") or 0)
        restarted = health.beats > 0 and (
            (pid and health.pid and pid != health.pid)
            or seq < health.seq)
        if restarted:
            # A rebooted worker's counters start from zero: drop the
            # rate baseline so deltas cannot go negative.  Progress
            # cursors are NOT reset — max-merge below keeps them
            # monotone across the restart.
            health.restarts += 1
            health._prev = None
            health.metrics = {}

        health.pid = pid or health.pid
        health.host = str(beat.get("host") or health.host)
        health.seq = seq
        health.last_seen = float(beat.get("unix") or now)
        # Never trust a clock skewed into the future for liveness.
        health.last_seen = min(health.last_seen, now)
        health.interval = float(beat.get("interval")
                                or health.interval
                                or self.default_interval)
        health.beats += 1
        if "queue_depth" in beat:
            health.queue_depth = int(beat["queue_depth"])
        if "inflight" in beat:
            health.inflight = [str(x) for x in beat["inflight"]]
        if "engine" in beat:
            health.engine = str(beat["engine"])
        if isinstance(beat.get("extra"), dict):
            health.extra.update(beat["extra"])

        # Latest-snapshot-supersedes metric merge, with rates from the
        # delta against the previous beat.
        prev_values = dict(health._prev[1]) if health._prev else {}
        prev_unix = health._prev[0] if health._prev else None
        for event in beat.get("metrics") or []:
            if isinstance(event, dict) and "name" in event:
                health.metrics[str(event["name"])] = dict(event)
        cur_values = _scalar_values(health.metrics)
        if prev_unix is not None and health.last_seen > prev_unix:
            dt = health.last_seen - prev_unix
            for mname, value in cur_values.items():
                delta = value - prev_values.get(mname, 0.0)
                health.rates[f"{mname}.rate"] = max(0.0, delta) / dt

        # Progress cursors: max-merge, worker-restart safe.
        for event in beat.get("progress") or []:
            if not isinstance(event, dict) or "name" not in event:
                continue
            sname = str(event["name"])
            cursor = health.progress.get(sname)
            done = float(event.get("done") or 0.0)
            if cursor is None:
                cursor = health.progress[sname] = {"done": 0.0}
            prev_done = float(cursor.get("done") or 0.0)
            merged = dict(event)
            merged.pop("type", None)
            merged["done"] = max(prev_done, done)
            cursor.update(merged)
            if prev_unix is not None and health.last_seen > prev_unix:
                dt = health.last_seen - prev_unix
                delta = max(0.0, cursor["done"]
                            - prev_values.get(f"progress:{sname}", 0.0))
                health.rates[sname] = delta / dt
        cur_values.update({
            f"progress:{sname}": float(cursor.get("done") or 0.0)
            for sname, cursor in health.progress.items()})
        health._prev = (health.last_seen, cur_values)

        self.beats += 1
        events: List[Tuple[str, Dict[str, Any]]] = []
        if previous_state != "live" and health.beats > 1:
            health.state = "live"
            events.append(("fleet.worker", {
                "worker": name, "state": "live",
                "previous": previous_state, "reason": "heartbeat"}))
        else:
            health.state = "live"
        events.append(("fleet.heartbeat", {
            "worker": name, "seq": health.seq, "pid": health.pid,
            "state": health.state,
            "faults_per_sec": health.faults_per_sec,
            "queue_depth": health.queue_depth,
            "restarts": health.restarts}))
        return events

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def sweep(self, now: Optional[float] = None
              ) -> List[Tuple[str, Dict[str, Any]]]:
        """Decay workers that stopped beating; returns transitions."""
        now = time.time() if now is None else now
        events: List[Tuple[str, Dict[str, Any]]] = []
        for health in self.workers.values():
            missed = health.missed_beats(now)
            if missed >= self.dead_misses:
                target = "dead"
            elif missed >= self.suspect_misses:
                target = "suspect"
            else:
                target = "live"
            if target != health.state \
                    and WORKER_STATES.index(target) \
                    > WORKER_STATES.index(health.state):
                previous = health.state
                health.state = target
                events.append(("fleet.worker", {
                    "worker": health.worker, "state": target,
                    "previous": previous,
                    "missed_beats": round(missed, 2),
                    "reason": "missed heartbeats"}))
        return events

    def worker_state(self, worker: str) -> Optional[str]:
        health = self.workers.get(worker)
        return None if health is None else health.state

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in WORKER_STATES}
        for health in self.workers.values():
            out[health.state] = out.get(health.state, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merged_values(self) -> Dict[str, float]:
        """Flat metric map the alert engine evaluates rules against.

        Counters and gauges sum across workers under their own names;
        per-worker rates sum under ``<name>.rate`` (counters) or the
        stream name (progress); histograms merge bucket-wise and
        surface ``<name>.p50/.p90/.p99/.count/.mean``.  Fleet-level
        aggregates live under ``fleet.*``.
        """
        values: Dict[str, float] = {}
        merged_hists: Dict[str, Histogram] = {}
        for health in self.workers.values():
            for name, event in health.metrics.items():
                etype = event.get("type")
                if etype in ("counter", "gauge"):
                    value = event.get("value")
                    if isinstance(value, (int, float)):
                        values[name] = values.get(name, 0.0) + float(value)
                elif etype == "histogram":
                    hist = merged_hists.get(name)
                    try:
                        if hist is None:
                            hist = merged_hists[name] = Histogram(
                                name, edges=event["edges"])
                        hist.merge_event(event)
                    except (TelemetryError, KeyError, ValueError):
                        continue  # incompatible edges: skip this worker
            for name, rate in health.rates.items():
                values[name] = values.get(name, 0.0) + rate
        for name, hist in merged_hists.items():
            values[f"{name}.count"] = float(hist.count)
            if hist.count:
                values[f"{name}.mean"] = hist.mean
                for key, est in hist.summary().items():
                    values[f"{name}.{key}"] = est
        counts = self.counts()
        values["fleet.workers"] = float(len(self.workers))
        for state in WORKER_STATES:
            values[f"fleet.workers.{state}"] = float(counts[state])
        values["fleet.faults_per_sec"] = sum(
            h.faults_per_sec for h in self.workers.values()
            if h.state != "dead")
        values["fleet.queue_depth"] = float(sum(
            h.queue_depth or 0 for h in self.workers.values()
            if h.state != "dead"))
        values["fleet.restarts"] = float(sum(
            h.restarts for h in self.workers.values()))
        return values

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The ``GET /v1/fleet`` document (``repro-fleet/1``)."""
        now = time.time() if now is None else now
        counts = self.counts()
        workers = [self.workers[name].to_doc(now)
                   for name in sorted(self.workers)]
        return {
            "schema": FLEET_SCHEMA,
            "generated_unix": now,
            "beats": self.beats,
            "workers": workers,
            "totals": {
                "workers": len(workers),
                "live": counts["live"],
                "suspect": counts["suspect"],
                "dead": counts["dead"],
                "faults_per_sec": sum(w["faults_per_sec"]
                                      for w in workers
                                      if w["state"] != "dead"),
                "queue_depth": sum(w.get("queue_depth") or 0
                                   for w in workers
                                   if w["state"] != "dead"),
                "inflight": sum(len(w.get("inflight") or ())
                                for w in workers
                                if w["state"] != "dead"),
            },
        }

    # ------------------------------------------------------------------
    # Prometheus
    # ------------------------------------------------------------------
    def prometheus(self, prefix: str = "repro",
                   now: Optional[float] = None) -> str:
        """Per-worker-labelled text exposition of the fleet view.

        :func:`~repro.telemetry.export.prometheus_exposition` renders
        one collector's instruments; the fleet needs the same metric
        name carrying a ``worker=...`` label per source, which this
        renders directly (counters as ``_total``, gauges verbatim,
        histogram count/sum plus quantile estimates — full per-worker
        bucket series would multiply scrape size for little insight).
        """
        now = time.time() if now is None else now
        lines: List[str] = []
        counts = self.counts()
        for state in WORKER_STATES:
            lines.append(
                f'{prefix}_fleet_workers{{state="{state}"}} '
                f"{counts[state]}")
        for name in sorted(self.workers):
            health = self.workers[name]
            label = f'worker="{_escape_label(name)}"'
            up = int(health.state == "live")
            lines.append(f"{prefix}_fleet_worker_up{{{label}}} {up}")
            lines.append(
                f"{prefix}_fleet_worker_last_seen_seconds{{{label}}} "
                f"{max(0.0, now - health.last_seen):.3f}")
            lines.append(
                f"{prefix}_fleet_worker_beats{{{label}}} {health.beats}")
            lines.append(
                f"{prefix}_fleet_worker_restarts{{{label}}} "
                f"{health.restarts}")
            lines.append(
                f"{prefix}_fleet_worker_faults_per_sec{{{label}}} "
                f"{health.faults_per_sec:g}")
            if health.queue_depth is not None:
                lines.append(
                    f"{prefix}_fleet_worker_queue_depth{{{label}}} "
                    f"{health.queue_depth}")
            for mname in sorted(health.metrics):
                event = health.metrics[mname]
                flat = prometheus_name(mname, prefix)
                etype = event.get("type")
                value = event.get("value")
                if etype == "counter":
                    lines.append(f"{flat}_total{{{label}}} {value}")
                elif etype == "gauge" and value is not None:
                    lines.append(f"{flat}{{{label}}} {value}")
                elif etype == "histogram" and event.get("count"):
                    lines.append(f"{flat}_count{{{label}}} "
                                 f"{event['count']}")
                    lines.append(f"{flat}_sum{{{label}}} "
                                 f"{event['sum']}")
                    for key in ("p50", "p90", "p99"):
                        if key in event:
                            quantile = int(key[1:]) / 100.0
                            lines.append(
                                f'{flat}_quantiles{{{label},'
                                f'quantile="{quantile:g}"}} '
                                f"{event[key]}")
        return "\n".join(lines) + ("\n" if lines else "")
