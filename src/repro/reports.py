"""Schema validators for the machine-readable report files.

Every ``repro bench``/``cluster``/``loadtest`` invocation writes a JSON
report stamped with a ``schema`` tag (``repro-bench-parallel/1``, ...).
CI used to re-assert each report's shape with a per-file inline Python
heredoc; those checks live here now, behind one dispatcher
(:func:`validate_report`) and one CLI entry point
(``repro runs validate --schema FILE...``), so a schema change updates
exactly one place and every consumer of a report file can defend itself
with the same code CI runs.

Validators check *structure and invariants* (fields present, rates
positive, verdicts identical), not threshold policy — thresholds belong
to each command's ``--check`` flag.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List

from .errors import ReproError

__all__ = ["REPORT_SCHEMAS", "ReportSchemaError", "validate_report",
           "validate_report_file", "validate_report_files"]


class ReportSchemaError(ReproError):
    """A report file failed schema validation."""


def _require(doc: Dict[str, Any], fields: Iterable[str],
             where: str) -> None:
    missing = [f for f in fields if f not in doc]
    if missing:
        raise ReportSchemaError(
            f"{where}: missing field(s): {', '.join(missing)}")


def _positive(doc: Dict[str, Any], fields: Iterable[str],
              where: str) -> None:
    for field in fields:
        value = doc.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            raise ReportSchemaError(
                f"{where}: {field!r} must be a positive number, "
                f"got {value!r}")


def _check_bench_parallel(doc: Dict[str, Any]) -> None:
    _require(doc, ("serial", "parallel", "speedup", "identical"),
             "bench-parallel report")
    for side in ("serial", "parallel"):
        _positive(doc[side],
                  ("seconds", "vectors_per_sec", "faults_per_sec"),
                  f"bench-parallel report [{side}]")
    if doc["identical"] is not True:
        raise ReportSchemaError(
            "bench-parallel report: parallel results are not "
            "bit-identical to serial")


def _check_bench_gatesim(doc: Dict[str, Any]) -> None:
    _require(doc, ("reference", "optimized", "speedup", "identical"),
             "bench-gatesim report")
    for side in ("reference", "optimized"):
        _positive(doc[side], ("seconds", "faults_per_sec"),
                  f"bench-gatesim report [{side}]")
    if doc["identical"] is not True:
        raise ReportSchemaError(
            "bench-gatesim report: optimized verdicts diverge from the "
            "reference engine")
    counters = doc["optimized"].get("counters", {})
    _positive(counters, ("gates.fault_batches",),
              "bench-gatesim report [optimized.counters]")


def _check_bench_gatesim_v2(doc: Dict[str, Any]) -> None:
    _require(doc, ("engines", "speedups", "identical"),
             "bench-gatesim/2 report")
    engines = doc["engines"]
    expected = {"event", "word", "reference"}
    if set(engines) != expected:
        raise ReportSchemaError(
            f"bench-gatesim/2 report: engines must be exactly "
            f"{sorted(expected)}, got {sorted(engines)}")
    for name, entry in engines.items():
        _positive(entry, ("seconds", "faults_per_sec"),
                  f"bench-gatesim/2 report [engines.{name}]")
        phases = entry.get("phases")
        if not isinstance(phases, dict):
            raise ReportSchemaError(
                f"bench-gatesim/2 report: engines.{name}.phases missing")
        _require(phases, ("compile_seconds", "golden_seconds",
                          "grade_seconds"),
                 f"bench-gatesim/2 report [engines.{name}.phases]")
        _positive(phases, ("grade_seconds",),
                  f"bench-gatesim/2 report [engines.{name}.phases]")
    if doc["identical"] is not True:
        raise ReportSchemaError(
            "bench-gatesim/2 report: engine verdicts are not identical")
    _require(doc["speedups"], ("event_vs_reference", "word_vs_reference",
                               "event_vs_word"),
             "bench-gatesim/2 report [speedups]")
    counters = engines["event"].get("counters", {})
    _positive(counters, ("gates.fault_batches",),
              "bench-gatesim/2 report [engines.event.counters]")


def _check_bench_schedule(doc: Dict[str, Any]) -> None:
    _require(doc, ("identical", "rank_correlation", "orderings"),
             "bench-schedule report")
    if doc["identical"] is not True:
        raise ReportSchemaError(
            "bench-schedule report: ordering verdicts diverge from the "
            "cone baseline")
    orderings = doc["orderings"]
    expected = {"cone", "predicted", "random"}
    if set(orderings) != expected:
        raise ReportSchemaError(
            f"bench-schedule report: orderings must be exactly "
            f"{sorted(expected)}, got {sorted(orderings)}")
    for mode, entry in orderings.items():
        _positive(entry, ("work_total",),
                  f"bench-schedule report [orderings.{mode}]")
        if not entry.get("work_to_90"):
            raise ReportSchemaError(
                f"bench-schedule report: orderings.{mode}.work_to_90 "
                f"is empty")


def _check_cluster_sweep(doc: Dict[str, Any]) -> None:
    _require(doc, ("params", "faults", "detected", "coverage",
                   "signature", "checkpoints", "shards", "workers",
                   "shard_timings"), "cluster-sweep report")
    _positive(doc, ("faults", "shards"), "cluster-sweep report")
    if not isinstance(doc["signature"], str) \
            or not doc["signature"].startswith("0x"):
        raise ReportSchemaError(
            f"cluster-sweep report: signature must be a 0x-prefixed hex "
            f"string, got {doc['signature']!r}")
    if not 0.0 <= doc["coverage"] <= 1.0:
        raise ReportSchemaError(
            f"cluster-sweep report: coverage {doc['coverage']!r} outside "
            f"[0, 1]")
    if not doc["checkpoints"]:
        raise ReportSchemaError(
            "cluster-sweep report: no coverage checkpoints")
    for point in doc["checkpoints"]:
        _require(point, ("vectors", "coverage"),
                 "cluster-sweep report [checkpoints]")
    if not doc["workers"]:
        raise ReportSchemaError("cluster-sweep report: no workers")
    for worker in doc["workers"]:
        _require(worker, ("endpoint", "shards", "faults", "busy_seconds",
                          "failures"), "cluster-sweep report [workers]")
    shard_faults = sum(t["faults"] for t in doc["shard_timings"]
                       if not t.get("duplicate"))
    if shard_faults != doc["faults"]:
        raise ReportSchemaError(
            f"cluster-sweep report: non-duplicate shard timings cover "
            f"{shard_faults} faults, report claims {doc['faults']}")


def _check_loadtest(doc: Dict[str, Any]) -> None:
    _require(doc, ("url", "concurrency", "duration_seconds", "requests",
                   "completed", "busy", "errors", "throughput_jobs_per_"
                   "second", "latency_seconds", "by_kind"),
             "loadtest report")
    _positive(doc, ("concurrency", "duration_seconds"), "loadtest report")
    latency = doc["latency_seconds"]
    _require(latency, ("p50", "p90", "p99", "mean", "max"),
             "loadtest report [latency_seconds]")
    if not (latency["p50"] <= latency["p90"] <= latency["p99"]
            <= latency["max"]):
        raise ReportSchemaError(
            f"loadtest report: latency percentiles are not monotonic: "
            f"{latency}")
    accounted = doc["completed"] + doc["busy"] + doc["errors"]
    if accounted != doc["requests"]:
        raise ReportSchemaError(
            f"loadtest report: completed+busy+errors = {accounted} != "
            f"requests = {doc['requests']}")


def _check_fleet(doc: Dict[str, Any]) -> None:
    _require(doc, ("generated_unix", "workers", "totals"), "fleet report")
    totals = doc["totals"]
    _require(totals, ("workers", "live", "suspect", "dead"),
             "fleet report [totals]")
    for worker in doc["workers"]:
        _require(worker, ("worker", "state", "last_seen_unix", "pid"),
                 "fleet report [workers]")
        if worker["state"] not in ("live", "suspect", "dead"):
            raise ReportSchemaError(
                f"fleet report: worker {worker['worker']!r} has unknown "
                f"state {worker['state']!r}")
    counted = sum(int(totals[state]) for state in ("live", "suspect",
                                                   "dead"))
    if counted != totals["workers"]:
        raise ReportSchemaError(
            f"fleet report: live+suspect+dead = {counted} != workers = "
            f"{totals['workers']}")


#: schema tag -> structural validator.
REPORT_SCHEMAS: Dict[str, Callable[[Dict[str, Any]], None]] = {
    "repro-fleet/1": _check_fleet,
    "repro-bench-parallel/1": _check_bench_parallel,
    "repro-bench-gatesim/1": _check_bench_gatesim,
    "repro-bench-gatesim/2": _check_bench_gatesim_v2,
    "repro-bench-schedule/1": _check_bench_schedule,
    "repro-cluster-sweep/1": _check_cluster_sweep,
    "repro-loadtest/1": _check_loadtest,
}


def validate_report(doc: Any) -> str:
    """Validate one report document; returns its schema tag."""
    if not isinstance(doc, dict):
        raise ReportSchemaError(
            f"report must be a JSON object, got {type(doc).__name__}")
    schema = doc.get("schema")
    checker = REPORT_SCHEMAS.get(schema)
    if checker is None:
        known = ", ".join(sorted(REPORT_SCHEMAS))
        raise ReportSchemaError(
            f"unknown report schema {schema!r}; known schemas: {known}")
    checker(doc)
    return str(schema)


def validate_report_file(path: str) -> str:
    """Load and validate one report file; returns its schema tag."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ReportSchemaError(f"{path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ReportSchemaError(f"{path}: not valid JSON: {exc}") from None
    try:
        return validate_report(doc)
    except ReportSchemaError as exc:
        raise ReportSchemaError(f"{path}: {exc}") from None


def validate_report_files(paths: Iterable[str]) -> List[str]:
    """Validate many files; returns ``"path: schema"`` summary lines."""
    return [f"{path}: {validate_report_file(path)} ok" for path in paths]
