"""Order-independent MISR signature merging over GF(2).

A Galois MISR (:class:`repro.bist.misr.Misr`) clocks one linear update
``L`` per word and XORs the (masked) word into its state, so from a
zero seed the final signature of a stream ``w_0 .. w_{n-1}`` is

    sig = XOR_i  L^(n-1-i) (w_i & mask)

— every word's contribution is independent of every other word's.  A
worker holding an arbitrary *subset* of stream positions can therefore
compact its shard into a single **partial** (the XOR of its words'
contributions), and the coordinator recovers the exact full-stream
signature by XORing partials — no matter how the universe was
partitioned, permuted or re-dispatched.  This is what lets a fleet
reproduce the single-node MISR signature bit for bit without shipping
the response stream anywhere.

``L`` is the ``width x width`` GF(2) matrix of the shift-and-poly step;
``L^k`` is applied with square-and-multiply over precomputed squarings,
so a 65k-fault universe costs ~``log2(n) * width`` word operations per
fault — microseconds, not a re-simulation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import GeneratorError
from ..generators.polynomials import default_poly, degree

__all__ = [
    "combine_partials",
    "shard_signature_partial",
    "step_matrix",
    "stream_signature",
]

#: A GF(2) linear map as columns: ``cols[i]`` is the image of basis
#: vector ``1 << i`` packed as an int bitmask.
Matrix = List[int]


def resolve_poly(width: int, poly: int = 0) -> int:
    """The MISR feedback polynomial, defaulting like :class:`Misr`."""
    if width < 2:
        raise GeneratorError(f"MISR width must be >= 2, got {width}")
    poly = poly or default_poly(width)
    if degree(poly) != width:
        raise GeneratorError(
            f"polynomial degree {degree(poly)} != width {width}")
    return poly


def step_matrix(width: int, poly: int = 0) -> Matrix:
    """One MISR clock as a linear map: shift left, fold the poly on a
    set MSB (injection of the input word is handled separately)."""
    poly = resolve_poly(width, poly)
    mask = (1 << width) - 1
    low = poly & mask
    cols: Matrix = []
    for i in range(width):
        basis = 1 << i
        msb = (basis >> (width - 1)) & 1
        cols.append(((basis << 1) & mask) ^ (low if msb else 0))
    return cols


def mat_vec(cols: Matrix, v: int) -> int:
    out = 0
    i = 0
    while v:
        if v & 1:
            out ^= cols[i]
        v >>= 1
        i += 1
    return out


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """Compose: ``(a . b)(v) == a(b(v))``."""
    return [mat_vec(a, col) for col in b]


def _squarings(width: int, poly: int, max_exp: int) -> List[Matrix]:
    """``[L, L^2, L^4, ...]`` covering exponents up to ``max_exp``."""
    mats = [step_matrix(width, poly)]
    while (1 << len(mats)) <= max_exp:
        mats.append(mat_mul(mats[-1], mats[-1]))
    return mats


def _apply_power(mats: List[Matrix], k: int, v: int) -> int:
    """``L^k (v)`` via the precomputed squarings."""
    j = 0
    while k and v:
        if k & 1:
            v = mat_vec(mats[j], v)
        k >>= 1
        j += 1
    return v


def shard_signature_partial(width: int, positions: Sequence[int],
                            words: Sequence[int], total: int,
                            poly: int = 0) -> int:
    """One shard's contribution to the full-stream MISR signature.

    ``positions`` are the global stream indices (0-based, ``< total``)
    of this shard's ``words``; the return value is
    ``XOR_i L^(total-1-positions[i]) (words[i] & mask)``.  XOR the
    partials of a complete, non-overlapping partition together
    (:func:`combine_partials`) and you have exactly
    ``Misr(width, poly).signature(full_stream)`` for a zero seed.
    """
    if len(positions) != len(words):
        raise GeneratorError(
            f"positions/words length mismatch: "
            f"{len(positions)} != {len(words)}")
    if total <= 0:
        return 0
    poly = resolve_poly(width, poly)
    mask = (1 << width) - 1
    mats = _squarings(width, poly, max(total - 1, 1))
    partial = 0
    for pos, word in zip(positions, words):
        pos = int(pos)
        if not 0 <= pos < total:
            raise GeneratorError(
                f"stream position {pos} out of range [0, {total})")
        injected = int(word) & mask
        partial ^= _apply_power(mats, total - 1 - pos, injected)
    return partial


def combine_partials(partials: Iterable[int]) -> int:
    """Merge shard partials into the full-stream signature (plain XOR)."""
    sig = 0
    for p in partials:
        sig ^= int(p)
    return sig


def stream_signature(width: int, words: Sequence[int],
                     poly: int = 0) -> int:
    """The single-node oracle: clock a real :class:`Misr` over the
    stream (zero seed, matching the partial algebra)."""
    from ..bist.misr import Misr

    return Misr(width, poly, seed=0).signature(words)
