"""Shard planning, worker-side grading and deterministic merging.

A *shard* is a run of whole cone batches
(:func:`repro.gates.faults.schedule_fault_batches`, or any PR 7
scheduler with the same contract) carrying the **global** fault indices
it covers.  Keeping batches intact preserves the schedule's cone
locality inside each worker, and carrying global indices makes the
merge trivial and order-free: verdicts and detection times scatter back
by index, the MISR signature merges by XOR of per-shard partials
(:mod:`repro.cluster.signature`), and coverage checkpoints are a pure
function of the merged detection times.  The whole pipeline is
bit-identical to a single-node :func:`gate_level_missed` run for *any*
partition, permutation or duplicated re-dispatch — the property the
merge-determinism suite asserts and the CI cluster-smoke job re-proves
against live workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusterError
from ..gates.fault_parallel import DEFAULT_WORDS, gate_level_missed
from ..gates.faults import EnumeratedFault, schedule_fault_batches
from .signature import (
    combine_partials,
    shard_signature_partial,
    stream_signature,
)

__all__ = [
    "DEFAULT_MISR_WIDTH",
    "DEFAULT_SHARD_FAULTS",
    "MergedGrade",
    "Shard",
    "coverage_checkpoints",
    "grade_shard",
    "merge_shard_results",
    "plan_shards",
    "single_node_grade",
]

#: Compaction width of the per-run signature (wide enough that the CI
#: identity assertion is meaningful, narrow enough to read in a log).
DEFAULT_MISR_WIDTH = 16

#: Default shard granularity: big enough to amortize a worker's netlist
#: elaboration, small enough that a fleet of two already overlaps.
DEFAULT_SHARD_FAULTS = 4096


@dataclass(frozen=True)
class Shard:
    """One dispatchable unit: whole cone batches, global indices."""

    shard_id: int
    indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def plan_shards(
    faults: Sequence[EnumeratedFault],
    *,
    max_faults: int = DEFAULT_SHARD_FAULTS,
    batch_size: int = 64 * DEFAULT_WORDS,
    scheduler: Optional[Callable[[Sequence[EnumeratedFault], int],
                                 List[List[int]]]] = None,
) -> List[Shard]:
    """Pack the scheduled cone batches into shards of ``<= max_faults``.

    Batches are never split (cone locality survives dispatch) and are
    packed in schedule order, so a predictor-guided ordering
    (:func:`repro.schedule.make_scheduler`) shapes which faults land in
    the early shards exactly as it shapes single-node batch order.
    """
    if max_faults <= 0:
        raise ClusterError(f"max_faults must be positive, got {max_faults}")
    plan = (schedule_fault_batches if scheduler is None else scheduler)
    shards: List[Shard] = []
    current: List[int] = []
    for batch in plan(faults, batch_size):
        if current and len(current) + len(batch) > max_faults:
            shards.append(Shard(len(shards), tuple(current)))
            current = []
        current.extend(int(i) for i in batch)
    if current:
        shards.append(Shard(len(shards), tuple(current)))
    return shards


def grade_shard(
    nl,
    input_raw,
    faults: Sequence[EnumeratedFault],
    indices: Sequence[int],
    total: int,
    *,
    misr_width: int = DEFAULT_MISR_WIDTH,
    misr_poly: int = 0,
    cache=None,
    chunk: Optional[int] = None,
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Grade one shard — the worker side of the ``grade-shard`` job.

    Runs the exact engine over the shard's subset (its own iterative
    deepening, dropping and cone batching; verdicts and chunk-end
    detection times are subset-invariant) and compacts the shard into a
    JSON-able result: per-index verdicts, detection times and the MISR
    signature *partial* for the shard's global stream positions.
    ``engine`` picks the cone evaluator tier
    (:data:`repro.gates.ENGINES`); every tier is exact, so a fleet may
    freely mix engines per worker and still merge bit-identically.
    """
    indices = [int(i) for i in indices]
    for i in indices:
        if not 0 <= i < len(faults):
            raise ClusterError(
                f"fault index {i} out of range [0, {len(faults)})")
        if i >= total:
            raise ClusterError(
                f"fault index {i} >= signature stream length {total}")
    subset = [faults[i] for i in indices]
    detect = np.full(len(subset), -1, dtype=np.int64)
    gate_level_missed(nl, input_raw, subset, cache=cache, chunk=chunk,
                      engine=engine, detect_times=detect)
    detected = (detect >= 0).astype(np.int64)
    partial = shard_signature_partial(
        misr_width, indices, [int(t) for t in detect], total,
        poly=misr_poly)
    return {
        "indices": indices,
        "detected": [int(v) for v in detected],
        "detect_times": [int(t) for t in detect],
        "signature_partial": int(partial),
        "faults": len(indices),
    }


def coverage_checkpoints(detect_times: np.ndarray, total: int,
                         test_length: int) -> List[Tuple[int, float]]:
    """Coverage over test length at every observed detection time.

    Checkpoints are the sorted distinct chunk-end detection times plus
    the full test length; each carries the fraction of the universe
    detected by that vector.  Purely a function of the merged detection
    times, hence identical for any shard partition.
    """
    times = np.asarray(detect_times, dtype=np.int64)
    points = sorted({int(t) for t in times[times >= 0]} | {int(test_length)})
    return [(t, float(np.count_nonzero((times >= 0) & (times <= t)))
             / max(1, total)) for t in points]


@dataclass
class MergedGrade:
    """A full-universe grading result, from one node or many."""

    verdicts: np.ndarray
    detect_times: np.ndarray
    signature: int
    checkpoints: List[Tuple[int, float]]
    test_length: int

    @property
    def total(self) -> int:
        return int(self.verdicts.size)

    @property
    def detected(self) -> int:
        return int(self.verdicts.sum())

    @property
    def coverage(self) -> float:
        return self.detected / max(1, self.total)

    @property
    def missed_indices(self) -> List[int]:
        return [int(i) for i in np.flatnonzero(~self.verdicts)]

    def identical_to(self, other: "MergedGrade") -> bool:
        return (bool(np.array_equal(self.verdicts, other.verdicts))
                and bool(np.array_equal(self.detect_times,
                                        other.detect_times))
                and self.signature == other.signature
                and self.checkpoints == other.checkpoints)


def merge_shard_results(
    total: int,
    results: Sequence[Dict[str, Any]],
    *,
    test_length: int,
    misr_width: int = DEFAULT_MISR_WIDTH,
) -> MergedGrade:
    """Fold per-shard results into one :class:`MergedGrade`.

    Duplicate deliveries of the same shard (straggler re-dispatch) are
    deduplicated by shard id — and cross-checked: a duplicate that
    *disagrees* with the first delivery means a worker graded wrong, so
    the merge refuses rather than silently picking one.  The merge also
    refuses on overlap or gaps: every fault index must be covered by
    exactly one surviving shard.
    """
    verdicts = np.zeros(total, dtype=bool)
    detect_times = np.full(total, -1, dtype=np.int64)
    seen: Dict[Any, Dict[str, Any]] = {}
    covered = np.zeros(total, dtype=bool)
    partials: List[int] = []
    for res in results:
        sid = res.get("shard")
        if sid is None:
            raise ClusterError("shard result is missing its shard id")
        first = seen.get(sid)
        if first is not None:
            for field in ("indices", "detected", "detect_times",
                          "signature_partial"):
                if first.get(field) != res.get(field):
                    raise ClusterError(
                        f"duplicate deliveries of shard {sid} disagree "
                        f"on {field!r}")
            continue
        seen[sid] = res
        idx = np.asarray(res["indices"], dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= total):
            raise ClusterError(
                f"shard {sid} carries out-of-range fault indices")
        if covered[idx].any():
            raise ClusterError(
                f"shard {sid} overlaps an already-merged shard")
        covered[idx] = True
        verdicts[idx] = np.asarray(res["detected"], dtype=np.int64) > 0
        detect_times[idx] = np.asarray(res["detect_times"], dtype=np.int64)
        partials.append(int(res["signature_partial"]))
    if not covered.all():
        missing = int(total - covered.sum())
        raise ClusterError(
            f"incomplete merge: {missing} of {total} faults uncovered")
    return MergedGrade(
        verdicts=verdicts,
        detect_times=detect_times,
        signature=combine_partials(partials),
        checkpoints=coverage_checkpoints(detect_times, total, test_length),
        test_length=test_length,
    )


def single_node_grade(
    nl,
    input_raw,
    faults: Sequence[EnumeratedFault],
    *,
    misr_width: int = DEFAULT_MISR_WIDTH,
    misr_poly: int = 0,
    cache=None,
    chunk: Optional[int] = None,
    engine: Optional[str] = None,
) -> MergedGrade:
    """The single-node oracle the fleet must reproduce bit for bit.

    One :func:`gate_level_missed` pass over the whole universe; the
    signature clocks a *real* MISR over the canonical detection-time
    stream (not the partial algebra), so fleet-vs-oracle comparisons
    exercise both sides of the signature identity.
    """
    detect = np.full(len(faults), -1, dtype=np.int64)
    gate_level_missed(nl, input_raw, faults, cache=cache, chunk=chunk,
                      engine=engine, detect_times=detect)
    test_length = int(len(input_raw))
    return MergedGrade(
        verdicts=detect >= 0,
        detect_times=detect,
        signature=stream_signature(misr_width, [int(t) for t in detect],
                                   poly=misr_poly),
        checkpoints=coverage_checkpoints(detect, len(faults), test_length),
        test_length=test_length,
    )
