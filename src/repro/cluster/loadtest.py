"""Closed-loop load generator for a ``repro serve`` endpoint.

Replays a mix of real job traffic (the same kinds and parameter shapes
the CLI and coordinator submit) from ``concurrency`` closed-loop
clients for a wall-clock ``duration``, then reports turnaround latency
percentiles, throughput, and the 429-busy rate.  ``LoadtestReport.check``
turns the report into a pass/fail gate so CI can assert "the service
under this fleet sustains N jobs/s with p99 under X" instead of
eyeballing numbers.

The generator is *closed-loop*: each client submits, waits for the
terminal state, then immediately submits again.  That measures the
service's sustainable turnaround under a fixed concurrency rather than
an open-loop arrival rate, which is the regime the coordinator's
dispatcher threads actually impose.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ClusterError
from ..service.client import ServiceBusy, ServiceClient, ServiceClientError

__all__ = ["DEFAULT_MIX", "LOADTEST_SCHEMA", "LoadtestReport",
           "run_loadtest"]

LOADTEST_SCHEMA = "repro-loadtest/1"

#: Kind -> base parameters for the default traffic mix.  Sizes are kept
#: small so a loadtest probes queueing and dispatch overhead, not raw
#: simulation throughput (the bench commands own that axis).
DEFAULT_MIX: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("spectrum", {"generator": "lfsr1", "width": 12, "points": 32}),
    ("rank", {"design": "LP", "vectors": 256}),
    ("grade", {"design": "LP", "generator": "lfsr1", "vectors": 256,
               "width": 12}),
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(sorted_values) + 0.5)))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


def _latency_doc(latencies: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    if not ordered:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}
    return {
        "p50": _percentile(ordered, 50),
        "p90": _percentile(ordered, 90),
        "p99": _percentile(ordered, 99),
        "mean": float(sum(ordered) / len(ordered)),
        "max": float(ordered[-1]),
    }


@dataclass
class _Sample:
    kind: str
    outcome: str  # "ok" | "busy" | "error"
    latency: float


@dataclass
class LoadtestReport:
    """Aggregated outcome of one :func:`run_loadtest` run."""

    url: str
    concurrency: int
    duration_seconds: float
    elapsed_seconds: float
    samples: List[_Sample] = field(default_factory=list, repr=False)

    @property
    def requests(self) -> int:
        return len(self.samples)

    @property
    def completed(self) -> int:
        return sum(1 for s in self.samples if s.outcome == "ok")

    @property
    def busy(self) -> int:
        return sum(1 for s in self.samples if s.outcome == "busy")

    @property
    def errors(self) -> int:
        return sum(1 for s in self.samples if s.outcome == "error")

    @property
    def busy_rate(self) -> float:
        return self.busy / max(1, self.requests)

    @property
    def error_rate(self) -> float:
        return self.errors / max(1, self.requests)

    @property
    def throughput(self) -> float:
        """Completed jobs per second of wall clock."""
        return self.completed / max(self.elapsed_seconds, 1e-9)

    @property
    def latencies(self) -> List[float]:
        return [s.latency for s in self.samples if s.outcome == "ok"]

    def check(self, *, max_p99: Optional[float] = None,
              min_throughput: Optional[float] = None,
              max_busy_rate: Optional[float] = None,
              max_error_rate: Optional[float] = None,
              min_completed: Optional[int] = None) -> List[str]:
        """Threshold violations, empty when the run passes."""
        failures: List[str] = []
        lat = _latency_doc(self.latencies)
        if max_p99 is not None and lat["p99"] > max_p99:
            failures.append(f"p99 latency {lat['p99']:.3f}s exceeds "
                            f"threshold {max_p99:g}s")
        if min_throughput is not None and self.throughput < min_throughput:
            failures.append(f"throughput {self.throughput:.2f} jobs/s "
                            f"below threshold {min_throughput:g}")
        if max_busy_rate is not None and self.busy_rate > max_busy_rate:
            failures.append(f"429-busy rate {self.busy_rate:.3f} exceeds "
                            f"threshold {max_busy_rate:g}")
        if max_error_rate is not None and self.error_rate > max_error_rate:
            failures.append(f"error rate {self.error_rate:.3f} exceeds "
                            f"threshold {max_error_rate:g}")
        if min_completed is not None and self.completed < min_completed:
            failures.append(f"completed {self.completed} jobs, below "
                            f"threshold {min_completed}")
        return failures

    def alert_values(self) -> Dict[str, float]:
        """Flat metric dict for alert-rule evaluation.

        Keys follow the ``loadtest.*`` namespace so the same rule files
        that watch live fleet metrics can also gate a loadtest report
        (``repro alerts check --loadtest report.json``).
        """
        lat = _latency_doc(self.latencies)
        return {
            "loadtest.requests": float(self.requests),
            "loadtest.completed": float(self.completed),
            "loadtest.busy_rate": self.busy_rate,
            "loadtest.error_rate": self.error_rate,
            "loadtest.throughput_jobs_per_second": self.throughput,
            "loadtest.p50_seconds": lat["p50"],
            "loadtest.p90_seconds": lat["p90"],
            "loadtest.p99_seconds": lat["p99"],
            "loadtest.mean_seconds": lat["mean"],
            "loadtest.max_seconds": lat["max"],
        }

    def to_doc(self) -> Dict[str, Any]:
        by_kind: Dict[str, Dict[str, Any]] = {}
        for sample in self.samples:
            entry = by_kind.setdefault(sample.kind, {
                "requests": 0, "completed": 0, "busy": 0, "errors": 0,
                "_lat": []})
            entry["requests"] += 1
            if sample.outcome == "ok":
                entry["completed"] += 1
                entry["_lat"].append(sample.latency)
            elif sample.outcome == "busy":
                entry["busy"] += 1
            else:
                entry["errors"] += 1
        for entry in by_kind.values():
            entry["latency_seconds"] = _latency_doc(entry.pop("_lat"))
        return {
            "schema": LOADTEST_SCHEMA,
            "url": self.url,
            "concurrency": self.concurrency,
            "duration_seconds": self.duration_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "requests": self.requests,
            "completed": self.completed,
            "busy": self.busy,
            "errors": self.errors,
            "busy_rate": self.busy_rate,
            "error_rate": self.error_rate,
            "throughput_jobs_per_second": self.throughput,
            "latency_seconds": _latency_doc(self.latencies),
            "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
        }


def _traffic(kinds: Sequence[str],
             mix: Sequence[Tuple[str, Dict[str, Any]]]
             ) -> List[Tuple[str, Dict[str, Any]]]:
    chosen = [(k, dict(p)) for k, p in mix if not kinds or k in kinds]
    if not chosen:
        known = ", ".join(sorted({k for k, _ in mix}))
        raise ClusterError(f"no loadtest traffic matches kinds "
                           f"{list(kinds)!r}; mix offers: {known}")
    return chosen


def _vary(params: Dict[str, Any], rng: random.Random) -> Dict[str, Any]:
    """Perturb sizes so the idempotency cache cannot coalesce every
    request — a loadtest of pure replays would measure dict lookups."""
    out = dict(params)
    for knob in ("vectors", "points"):
        if knob in out:
            out[knob] = max(2, int(out[knob]) >> rng.randint(0, 2))
    return out


def run_loadtest(
    url: str,
    *,
    concurrency: int = 4,
    duration: float = 10.0,
    kinds: Sequence[str] = (),
    mix: Sequence[Tuple[str, Dict[str, Any]]] = DEFAULT_MIX,
    seed: int = 0,
    job_timeout: float = 60.0,
    client_factory: Optional[Callable[[str], ServiceClient]] = None,
) -> LoadtestReport:
    """Drive ``concurrency`` closed-loop clients for ``duration`` seconds.

    Each client cycles the traffic ``mix`` (optionally filtered to
    ``kinds``) with deterministically perturbed sizes, measuring full
    submit-to-terminal turnaround.  429/503 rejections count toward the
    busy rate without a latency sample (the client deliberately uses
    ``retries=0``: a loadtest wants to *see* rejections, not paper over
    them); failed jobs and transport errors count as errors.
    """
    if concurrency <= 0:
        raise ClusterError(f"concurrency must be positive, "
                           f"got {concurrency}")
    if duration <= 0:
        raise ClusterError(f"duration must be positive, got {duration}")
    traffic = _traffic(kinds, mix)
    make_client = client_factory or (lambda ep: ServiceClient(
        ep, client_id="loadtest", timeout=max(10.0, job_timeout)))
    samples: List[_Sample] = []
    lock = threading.Lock()
    start = time.monotonic()
    deadline = start + duration

    def _client_loop(worker: int) -> None:
        rng = random.Random((seed << 8) ^ worker)
        client = make_client(url)
        step = worker  # stagger the mix across clients
        while time.monotonic() < deadline:
            kind, base = traffic[step % len(traffic)]
            step += 1
            params = _vary(base, rng)
            t0 = time.monotonic()
            try:
                job = client.submit(kind, params)
                doc = client.wait(job["id"], timeout=job_timeout)
                outcome = "ok" if doc.get("state") == "done" else "error"
            except ServiceBusy:
                outcome = "busy"
            except (ServiceClientError, OSError, TimeoutError):
                outcome = "error"
            sample = _Sample(kind, outcome, time.monotonic() - t0)
            with lock:
                samples.append(sample)
            if outcome == "busy":
                # Closed-loop politeness: a rejected client backs off a
                # beat instead of hammering the admission gate.
                time.sleep(min(0.2, max(0.0, deadline - time.monotonic())))

    threads = [threading.Thread(target=_client_loop, args=(i,),
                                name=f"loadtest-{i}", daemon=True)
               for i in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    return LoadtestReport(url=url, concurrency=concurrency,
                          duration_seconds=duration,
                          elapsed_seconds=elapsed, samples=samples)
