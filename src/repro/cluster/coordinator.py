"""Shard dispatch across a fleet of ``repro serve`` workers.

The coordinator plans cone-aligned shards (:mod:`~repro.cluster.shards`),
runs one dispatcher thread per worker endpoint, and drives each shard
through the existing HTTP+JSON job protocol as a ``grade-shard`` job:

* **Retry with capped backoff** — a failed or timed-out shard goes back
  on the queue (preferring a *different* endpoint than the one that just
  failed it) while the failing dispatcher sleeps an exponentially
  growing, jittered, capped backoff; a shard that exhausts
  ``max_retries`` aborts the run with :class:`~repro.errors.ClusterError`.
* **Straggler re-dispatch** — once the queue is empty, an idle
  dispatcher speculatively duplicates the longest-inflight shard after a
  deadline (``straggler_factor`` x the median completed-shard time, at
  least ``straggler_min``); the merge layer deduplicates by shard id and
  cross-checks that duplicate deliveries agree, so speculation can only
  add safety, never skew.
* **Heartbeat liveness** — with ``heartbeat_poll`` set, a monitor
  thread polls every endpoint's ``/v1/fleet`` snapshot; two consecutive
  failed polls mark the endpoint ``dead`` and its dispatcher stops
  pulling new shards (the retry/straggler machinery already covers the
  inflight attempt) until a later poll sees it live again.  Per-endpoint
  health lands in the report as ``endpoint_health``.
* **One span tree, live progress** — each dispatch runs under a
  ``cluster.shard`` span carrying the coordinator's
  :class:`~repro.telemetry.TraceContext`; workers return their span
  payload inside the job result and the coordinator grafts it with
  ``tel.absorb``, so a multi-node sweep renders exactly like a local one.
  Live per-shard ``gates.grade`` progress from job documents is folded
  into the coordinator's monotone ``cluster.grade`` stream.

Merged verdicts, coverage checkpoints and the MISR signature are
bit-identical to :func:`single_node_grade` — ``verify=True`` re-proves
it in-process, and the CI cluster-smoke job re-proves it across real
processes with a worker killed mid-run.
"""

from __future__ import annotations

import logging
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ClusterError
from ..service.client import ServiceBusy, ServiceClient, ServiceClientError
from ..telemetry import TraceContext, get_telemetry
from .shards import (
    DEFAULT_MISR_WIDTH,
    DEFAULT_SHARD_FAULTS,
    MergedGrade,
    Shard,
    merge_shard_results,
    plan_shards,
    single_node_grade,
)

__all__ = ["ClusterCoordinator", "ClusterReport", "run_cluster_sweep"]

logger = logging.getLogger("repro.cluster")

CLUSTER_SCHEMA = "repro-cluster-sweep/1"


@dataclass
class WorkerTally:
    """Per-endpoint accounting for the report and the ledger record."""

    endpoint: str
    shards: int = 0
    faults: int = 0
    busy_seconds: float = 0.0
    failures: int = 0

    def to_doc(self) -> Dict[str, Any]:
        return {
            "endpoint": self.endpoint,
            "shards": self.shards,
            "faults": self.faults,
            "busy_seconds": round(self.busy_seconds, 6),
            "failures": self.failures,
        }


@dataclass
class ClusterReport:
    """Everything a sharded sweep produced and how it got there."""

    merged: MergedGrade
    params: Dict[str, Any]
    shards: int
    workers: List[WorkerTally]
    shard_timings: List[Dict[str, Any]]
    attempts: int = 0
    retries: int = 0
    speculated: int = 0
    duplicates: int = 0
    elapsed_seconds: float = 0.0
    verified: Optional[bool] = None
    endpoint_health: Optional[Dict[str, Dict[str, Any]]] = None

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": CLUSTER_SCHEMA,
            "params": dict(self.params),
            "faults": self.merged.total,
            "detected": self.merged.detected,
            "missed": self.merged.total - self.merged.detected,
            "coverage": self.merged.coverage,
            "signature": f"0x{self.merged.signature:x}",
            "checkpoints": [{"vectors": t, "coverage": c}
                            for t, c in self.merged.checkpoints],
            "shards": self.shards,
            "attempts": self.attempts,
            "retries": self.retries,
            "speculated": self.speculated,
            "duplicates": self.duplicates,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "workers": [w.to_doc() for w in self.workers],
            "shard_timings": list(self.shard_timings),
        }
        if self.verified is not None:
            doc["verified"] = self.verified
        if self.endpoint_health is not None:
            doc["endpoint_health"] = {
                ep: dict(h) for ep, h in self.endpoint_health.items()}
        return doc


@dataclass
class _Task:
    shard: Shard
    attempt: int = 0
    avoid: Optional[str] = None


@dataclass
class _Inflight:
    """One running attempt, keyed by ``(shard_id, endpoint)`` — a
    speculated shard legitimately runs on two endpoints at once."""

    started: float
    progress_done: int = 0


class ClusterCoordinator:
    """Drives a planned shard list through a worker fleet."""

    def __init__(
        self,
        endpoints: Sequence[str],
        job_params: Dict[str, Any],
        *,
        total: int,
        test_length: int,
        misr_width: int = DEFAULT_MISR_WIDTH,
        shard_timeout: float = 600.0,
        max_retries: int = 4,
        backoff_base: float = 0.5,
        backoff_cap: float = 15.0,
        straggler_factor: float = 3.0,
        straggler_min: float = 60.0,
        poll: float = 2.0,
        heartbeat_poll: float = 0.0,
        client_factory: Optional[Callable[[str], ServiceClient]] = None,
    ):
        if not endpoints:
            raise ClusterError("at least one worker endpoint is required")
        if max_retries < 0:
            raise ClusterError(f"max_retries must be >= 0, "
                               f"got {max_retries}")
        if heartbeat_poll < 0:
            raise ClusterError(f"heartbeat_poll must be >= 0, "
                               f"got {heartbeat_poll}")
        self.endpoints = list(dict.fromkeys(endpoints))  # stable dedupe
        self.job_params = dict(job_params)
        self.total = total
        self.test_length = test_length
        self.misr_width = misr_width
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.straggler_factor = straggler_factor
        self.straggler_min = straggler_min
        self.poll = poll
        self.heartbeat_poll = heartbeat_poll
        self._client_factory = client_factory or (
            lambda ep: ServiceClient(
                ep, client_id=f"cluster-{os.getpid()}",
                timeout=max(30.0, poll + 10.0), retries=3))
        self._rng = random.Random(0x5EED)

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: List[_Task] = []
        self._inflight: Dict[Any, _Inflight] = {}  # (sid, endpoint) keys
        self._results: List[Dict[str, Any]] = []
        self._done_ids: set = set()
        self._speculated_ids: set = set()
        self._completed_seconds: List[float] = []
        self._fatal: Optional[ClusterError] = None
        self._payloads: List[Dict[str, Any]] = []

        self.tallies = {ep: WorkerTally(ep) for ep in self.endpoints}
        self.shard_timings: List[Dict[str, Any]] = []
        self.attempts = 0
        self.retries = 0
        self.speculated = 0
        self.duplicates = 0

        self.endpoint_health: Dict[str, Dict[str, Any]] = {
            ep: {"state": "live", "polls": 0, "failures": 0,
                 "consecutive_failures": 0, "totals": None}
            for ep in self.endpoints}
        self._monitor_stop = threading.Event()

    # ------------------------------------------------------------------
    # Scheduling decisions (all under the lock)
    # ------------------------------------------------------------------
    def _straggler_deadline(self) -> float:
        if not self._completed_seconds:
            return max(self.straggler_min, self.shard_timeout / 2.0)
        times = sorted(self._completed_seconds)
        median = times[len(times) // 2]
        return max(self.straggler_min, self.straggler_factor * median)

    def _pick(self, endpoint: str) -> Optional[_Task]:
        """Next task for ``endpoint``: queued work first (preferring
        shards that did not just fail here), then a straggler to
        speculate on; ``None`` means wait."""
        for i, task in enumerate(self._pending):
            if task.avoid != endpoint:
                return self._pending.pop(i)
        if self._pending:  # only avoid-matching tasks left: take one
            return self._pending.pop(0)
        deadline = self._straggler_deadline()
        now = time.monotonic()
        candidates = [
            (info.started, sid, ep)
            for (sid, ep), info in self._inflight.items()
            if sid not in self._speculated_ids and ep != endpoint
            and sid not in self._done_ids
            and now - info.started > deadline
        ]
        if not candidates:
            return None
        _started, sid, holder = min(candidates)
        self._speculated_ids.add(sid)
        self.speculated += 1
        logger.warning("cluster: speculatively re-dispatching straggler "
                       "shard %d (running on %s) to %s", sid, holder,
                       endpoint)
        return _Task(self._shards_by_id[sid], attempt=0, avoid=holder)

    def _finished(self) -> bool:
        return (self._fatal is not None
                or len(self._done_ids) == len(self._shards_by_id))

    # ------------------------------------------------------------------
    # Endpoint liveness (heartbeat poll)
    # ------------------------------------------------------------------
    def _endpoint_dead(self, endpoint: str) -> bool:
        health = self.endpoint_health.get(endpoint)
        return health is not None and health["state"] == "dead"

    def _monitor(self) -> None:
        """Poll each endpoint's ``/v1/fleet`` on a fixed cadence.

        Mirrors the heartbeat liveness ladder: one failed poll marks an
        endpoint ``suspect``, two consecutive failures mark it ``dead``
        and its dispatcher stops pulling new shards until a later poll
        succeeds again.  The already-inflight attempt on a dead endpoint
        is left to the shard timeout / straggler machinery — liveness
        only gates *new* dispatch, so a false positive can never lose
        work.
        """
        clients = {ep: self._client_factory(ep) for ep in self.endpoints}
        for client in clients.values():
            client.timeout = max(2.0, self.heartbeat_poll)
            client.retries = 0
        while not self._monitor_stop.wait(self.heartbeat_poll):
            for ep, client in clients.items():
                health = self.endpoint_health[ep]
                try:
                    snapshot = client.fleet()
                except (ServiceBusy, ServiceClientError, OSError,
                        TimeoutError) as exc:
                    health["polls"] += 1
                    health["failures"] += 1
                    health["consecutive_failures"] += 1
                    state = ("dead" if health["consecutive_failures"] >= 2
                             else "suspect")
                    if state != health["state"]:
                        logger.warning("cluster: endpoint %s is %s "
                                       "(%d consecutive failed fleet "
                                       "polls): %s", ep, state,
                                       health["consecutive_failures"], exc)
                        health["state"] = state
                    continue
                health["polls"] += 1
                health["consecutive_failures"] = 0
                health["totals"] = snapshot.get("totals")
                if health["state"] != "live":
                    logger.info("cluster: endpoint %s recovered (live)",
                                ep)
                    health["state"] = "live"
                    with self._cond:
                        self._cond.notify_all()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _emit_progress(self, tel) -> None:
        if not tel.enabled:
            return
        done = sum(len(self._shards_by_id[sid]) for sid in self._done_ids)
        live: Dict[int, int] = {}
        for (sid, _ep), info in self._inflight.items():
            if sid not in self._done_ids:
                live[sid] = max(live.get(sid, 0), info.progress_done)
        partial = sum(live.values())
        tel.progress("cluster.grade", min(done + partial, self.total),
                     self.total, shards_done=len(self._done_ids),
                     shards=len(self._shards_by_id))

    def _execute(self, endpoint: str, client: ServiceClient,
                 task: _Task) -> Dict[str, Any]:
        """Run one shard on one worker; raises on any failure."""
        shard = task.shard
        params = dict(self.job_params)
        params["indices"] = list(shard.indices)
        params["total"] = self.total
        params["misr_width"] = self.misr_width
        tel = get_telemetry()
        ctx = TraceContext.current()
        if ctx is not None:
            params["trace"] = {"trace_id": ctx.trace_id,
                               "span_id": ctx.span_id}
        job = client.submit(
            "grade-shard", params,
            idempotency_key=f"shard-{shard.shard_id}-a{task.attempt}")
        job_id = job["id"]
        t0 = time.monotonic()
        try:
            while True:
                elapsed = time.monotonic() - t0
                if elapsed > self.shard_timeout:
                    raise ClusterError(
                        f"shard {shard.shard_id} timed out after "
                        f"{self.shard_timeout:g}s on {endpoint}")
                doc = client.job(job_id, wait=self.poll)
                stream = (doc.get("progress") or {}).get("gates.grade")
                if stream is not None:
                    with self._lock:
                        info = self._inflight.get(
                            (shard.shard_id, endpoint))
                        if info is not None:
                            info.progress_done = int(stream.get("done", 0))
                        self._emit_progress(tel)
                if doc.get("state") in ("done", "failed", "cancelled"):
                    break
        except BaseException:
            self._cancel_quietly(client, job_id)
            raise
        if doc["state"] != "done":
            raise ClusterError(
                f"shard {shard.shard_id} {doc['state']} on {endpoint}: "
                f"{doc.get('error', 'no result')}")
        result = dict(doc.get("result") or {})
        result["shard"] = shard.shard_id
        return result

    @staticmethod
    def _cancel_quietly(client: ServiceClient, job_id: str) -> None:
        try:
            client.cancel(job_id)
        except Exception:
            pass

    def _backoff(self, consecutive: int) -> float:
        delay = min(self.backoff_cap,
                    self.backoff_base * (2.0 ** max(consecutive - 1, 0)))
        with self._lock:
            jitter = 0.5 + self._rng.random()  # 0.5x .. 1.5x
        return delay * jitter

    def _dispatcher(self, endpoint: str) -> None:
        tel = get_telemetry()
        client = self._client_factory(endpoint)
        tally = self.tallies[endpoint]
        consecutive_failures = 0
        while True:
            with self._cond:
                while True:
                    if self._finished():
                        self._cond.notify_all()
                        return
                    if self._endpoint_dead(endpoint):
                        # Dead per heartbeat poll: hold off new dispatch
                        # until the monitor sees the endpoint again.
                        self._cond.wait(timeout=1.0)
                        continue
                    task = self._pick(endpoint)
                    if task is not None:
                        break
                    self._cond.wait(timeout=1.0)
                sid = task.shard.shard_id
                self._inflight[(sid, endpoint)] = _Inflight(
                    time.monotonic())
                self.attempts += 1
            t0 = time.monotonic()
            try:
                with tel.span("cluster.shard", shard=sid,
                              endpoint=endpoint, attempt=task.attempt,
                              faults=len(task.shard)):
                    result = self._execute(endpoint, client, task)
            except (ClusterError, ServiceBusy, ServiceClientError,
                    OSError, TimeoutError) as exc:
                consecutive_failures += 1
                seconds = time.monotonic() - t0
                logger.warning("cluster: shard %d attempt %d failed on "
                               "%s after %.1fs: %s", sid, task.attempt,
                               endpoint, seconds, exc)
                with self._cond:
                    tally.failures += 1
                    self._inflight.pop((sid, endpoint), None)
                    if sid in self._done_ids:
                        pass  # a speculative twin already delivered it
                    elif task.attempt >= self.max_retries:
                        self._fatal = ClusterError(
                            f"shard {sid} failed after "
                            f"{task.attempt + 1} attempts; last error "
                            f"on {endpoint}: {exc}")
                    else:
                        self.retries += 1
                        self._pending.append(_Task(
                            task.shard, attempt=task.attempt + 1,
                            avoid=endpoint))
                    self._cond.notify_all()
                if tel.enabled:
                    tel.counter("cluster.shard_failures").add(1)
                time.sleep(self._backoff(consecutive_failures))
                continue
            consecutive_failures = 0
            seconds = time.monotonic() - t0
            payload = result.pop("trace", None)
            with self._cond:
                if payload is not None:
                    self._payloads.append(payload)
                duplicate = sid in self._done_ids
                if duplicate:
                    self.duplicates += 1
                self._results.append(result)
                self._done_ids.add(sid)
                self._inflight.pop((sid, endpoint), None)
                if not duplicate:
                    self._completed_seconds.append(seconds)
                tally.shards += 1
                tally.faults += len(task.shard)
                tally.busy_seconds += seconds
                self.shard_timings.append({
                    "shard": sid,
                    "endpoint": endpoint,
                    "attempt": task.attempt,
                    "faults": len(task.shard),
                    "seconds": round(seconds, 6),
                    "duplicate": duplicate,
                })
                self._emit_progress(tel)
                self._cond.notify_all()
            if tel.enabled:
                tel.counter("cluster.shards_done").add(1)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, shards: Sequence[Shard]) -> ClusterReport:
        if not shards:
            raise ClusterError("no shards to dispatch")
        self._shards_by_id = {s.shard_id: s for s in shards}
        if len(self._shards_by_id) != len(shards):
            raise ClusterError("shard ids must be unique")
        self._pending = [_Task(s) for s in shards]
        tel = get_telemetry()
        t0 = time.monotonic()
        with tel.span("cluster.sweep", shards=len(shards),
                      faults=self.total,
                      workers=len(self.endpoints)):
            monitor = None
            if self.heartbeat_poll > 0:
                monitor = threading.Thread(target=self._monitor,
                                           name="cluster-monitor",
                                           daemon=True)
                monitor.start()
            threads = [
                threading.Thread(target=self._dispatcher, args=(ep,),
                                 name=f"cluster-{i}", daemon=True)
                for i, ep in enumerate(self.endpoints)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if monitor is not None:
                self._monitor_stop.set()
                monitor.join(timeout=max(5.0, self.heartbeat_poll * 2))
            # Graft every worker's span payload under the sweep span.
            if tel.enabled:
                for payload in self._payloads:
                    tel.absorb(payload)
        if self._fatal is not None:
            raise self._fatal
        merged = merge_shard_results(
            self.total, self._results, test_length=self.test_length,
            misr_width=self.misr_width)
        return ClusterReport(
            merged=merged,
            params=dict(self.job_params, total=self.total,
                        misr_width=self.misr_width),
            shards=len(shards),
            workers=[self.tallies[ep] for ep in self.endpoints],
            shard_timings=self.shard_timings,
            attempts=self.attempts,
            retries=self.retries,
            speculated=self.speculated,
            duplicates=self.duplicates,
            elapsed_seconds=time.monotonic() - t0,
            endpoint_health=(self.endpoint_health
                             if self.heartbeat_poll > 0 else None),
        )


def run_cluster_sweep(
    endpoints: Sequence[str],
    *,
    design: str = "LP",
    generator: str = "lfsr1",
    vectors: int = 512,
    width: int = 12,
    faults_limit: int = 0,
    shard_faults: int = DEFAULT_SHARD_FAULTS,
    schedule: str = "cone",
    schedule_bins: int = 256,
    schedule_seed: int = 0,
    chunk: int = 0,
    engine: str = "",
    misr_width: int = DEFAULT_MISR_WIDTH,
    shard_timeout: float = 600.0,
    max_retries: int = 4,
    straggler_factor: float = 3.0,
    straggler_min: float = 60.0,
    poll: float = 2.0,
    heartbeat_poll: float = 0.0,
    verify: bool = False,
    cache=None,
    client_factory: Optional[Callable[[str], ServiceClient]] = None,
) -> ClusterReport:
    """Plan, dispatch and merge one sharded sweep; optionally verify.

    The universe, stimulus and scheduler are built exactly as the
    workers build them (same resolver, same enumeration, same
    ``match_width`` stimulus), so global fault indices mean the same
    thing on every node.  ``verify=True`` additionally runs the
    single-node oracle locally and raises
    :class:`~repro.errors.ClusterError` unless verdicts, detection
    times, checkpoints and the MISR signature are all bit-identical.

    ``engine`` names the cone evaluator tier the workers run
    (:data:`repro.gates.ENGINES`; empty = the workers' default).  The
    verify oracle deliberately runs a *different* tier than the fleet
    whenever it can, so a verified sweep is also a cross-engine
    equivalence proof.
    """
    from ..experiments import ExperimentContext
    from ..gates import elaborate, enumerate_cell_faults
    from ..generators.base import match_width
    from ..resolve import make_generator, resolve_design, resolve_generator

    design = resolve_design(design)
    generator = resolve_generator(generator)
    ctx = ExperimentContext(cache=cache)
    dsg = ctx.designs[design]
    nl = elaborate(dsg.graph)
    faults = enumerate_cell_faults(dsg.graph, nl)
    if faults_limit:
        faults = faults[:faults_limit]
    gen = make_generator(generator, width, vectors)
    raw = match_width(gen.sequence(vectors), gen.width,
                      dsg.input_fmt.width)

    scheduler = None
    if schedule != "cone":
        from ..schedule import FaultPredictor, make_scheduler

        predictor = (FaultPredictor(dsg, generator, bins=schedule_bins)
                     if schedule == "predicted" else None)
        scheduler = make_scheduler(schedule, predictor=predictor,
                                   seed=schedule_seed)
    shards = plan_shards(faults, max_faults=shard_faults,
                         scheduler=scheduler)

    # Global indices address the *prefix-truncated* universe the same
    # way they address the full one, so a --faults cap needs no extra
    # parameter: ``total`` bounds the signature stream and every index
    # the workers see is below it.
    job_params = {
        "design": design,
        "generator": generator,
        "vectors": vectors,
        "width": width,
    }
    if chunk:
        job_params["chunk"] = chunk
    if engine:
        from ..gates import resolve_engine

        job_params["engine"] = resolve_engine(engine)
    coordinator = ClusterCoordinator(
        endpoints, job_params, total=len(faults), test_length=len(raw),
        misr_width=misr_width, shard_timeout=shard_timeout,
        max_retries=max_retries, straggler_factor=straggler_factor,
        straggler_min=straggler_min, poll=poll,
        heartbeat_poll=heartbeat_poll,
        client_factory=client_factory)
    report = coordinator.run(shards)
    if verify:
        from ..gates import resolve_engine

        fleet_engine = resolve_engine(engine or None)
        oracle_engine = "word" if fleet_engine != "word" else "event"
        oracle = single_node_grade(
            nl, raw, faults, misr_width=misr_width, cache=cache,
            chunk=chunk or None, engine=oracle_engine)
        report.verified = report.merged.identical_to(oracle)
        if not report.verified:
            raise ClusterError(
                "sharded result differs from the single-node oracle "
                f"(cluster signature 0x{report.merged.signature:x}, "
                f"single-node 0x{oracle.signature:x})")
    return report
