"""Distributed sharded fault grading over the HTTP service protocol.

The cone schedule (:func:`repro.gates.faults.schedule_fault_batches`)
makes gate-level grading embarrassingly divisible: verdicts and
detection times depend only on each fault's own waveform against the
shared stimulus, never on batch composition, so any partition of the
universe grades to bit-identical results.  This package exploits that:

* :mod:`~repro.cluster.shards` — plan cone-aligned shards, run one
  shard's grading (the worker side of the ``grade-shard`` job kind) and
  merge per-shard results back into single-node-identical verdicts,
  coverage checkpoints and MISR signatures;
* :mod:`~repro.cluster.signature` — the GF(2)-linear MISR algebra that
  lets each worker compact its shard into one signature *partial* which
  XOR-merge to exactly the signature a single MISR clocking the full
  canonical response stream would produce;
* :mod:`~repro.cluster.coordinator` — dispatches shards to a fleet of
  ``repro serve`` workers, retries failures with capped backoff,
  re-dispatches stragglers, grafts worker trace payloads into one span
  tree and appends a ``cluster-sweep`` ledger record;
* :mod:`~repro.cluster.loadtest` — replays job traffic against a
  serve/cluster endpoint and reports p50/p90/p99 latency, throughput
  and 429 rates with ``--check`` thresholds.
"""

from .coordinator import ClusterCoordinator, ClusterReport, run_cluster_sweep
from .loadtest import LoadtestReport, run_loadtest
from .shards import (
    MergedGrade,
    Shard,
    coverage_checkpoints,
    grade_shard,
    merge_shard_results,
    plan_shards,
    single_node_grade,
)
from .signature import combine_partials, shard_signature_partial

__all__ = [
    "ClusterCoordinator",
    "ClusterReport",
    "combine_partials",
    "coverage_checkpoints",
    "grade_shard",
    "LoadtestReport",
    "merge_shard_results",
    "MergedGrade",
    "plan_shards",
    "run_cluster_sweep",
    "run_loadtest",
    "Shard",
    "shard_signature_partial",
    "single_node_grade",
]
