"""Two's-complement fixed-point arithmetic substrate.

See :mod:`repro.fixedpoint.qformat` for the format model and
:mod:`repro.fixedpoint.ops` for the bit-exact ripple-carry primitives used
throughout the fault model.
"""

from .qformat import Fixed, bit, sign_bit, wrap
from .ops import (
    adder_cell_inputs,
    arith_shift_right,
    carry_chain,
    cell_pattern_codes,
    wrap_add,
    wrap_sub,
)
from .quantize import dynamic_range_db, quantization_noise_power, quantize_signal

__all__ = [
    "Fixed",
    "bit",
    "sign_bit",
    "wrap",
    "adder_cell_inputs",
    "arith_shift_right",
    "carry_chain",
    "cell_pattern_codes",
    "wrap_add",
    "wrap_sub",
    "quantize_signal",
    "quantization_noise_power",
    "dynamic_range_db",
]
