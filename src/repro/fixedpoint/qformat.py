"""Two's-complement fixed-point formats.

The paper expresses every signal *relative to the bit width available at
that point in the circuit*: an ``N``-bit word ``b0 b1 ... b(N-1)`` is read
as ``-b0 + sum(b_i * 2**-i)``, i.e. a number in ``[-1, 1)``.  Inside a real
datapath, however, signals at different nodes share a common binary point
so that adders can combine them directly.  :class:`Fixed` therefore carries
both a total ``width`` and a fractional bit count ``frac``:

* the *engineering* value of a raw integer ``r`` is ``r * 2**-frac``;
* the *normalized* value (the paper's convention) is ``r / 2**(width-1)``,
  which always lies in ``[-1, 1)``.

Raw values are stored as plain ``int`` or ``numpy.int64`` arrays.  All
formats used by the filter designs in this package are narrow enough
(``width + frac`` well under 62) that ``int64`` intermediates never
overflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FixedPointError

__all__ = ["Fixed", "wrap", "sign_bit", "bit"]

_MAX_WIDTH = 60


def wrap(raw, width: int):
    """Wrap integers into the two's-complement range of ``width`` bits.

    Mirrors the modular arithmetic of a hardware adder that simply drops
    carries out of the most significant bit.  Works on scalars and numpy
    arrays alike.
    """
    if not 1 <= width <= _MAX_WIDTH:
        raise FixedPointError(f"width must be in [1, {_MAX_WIDTH}], got {width}")
    span = 1 << width
    half = 1 << (width - 1)
    return (raw + half) % span - half


def sign_bit(raw, width: int):
    """Return the sign (MSB) bit of ``raw`` in a ``width``-bit format."""
    return (np.asarray(raw) >> (width - 1)) & 1


def bit(raw, k):
    """Return bit ``k`` (LSB = 0) of a two's-complement raw value.

    Negative Python/numpy integers already use an infinite two's-complement
    representation, so a plain shift-and-mask is exact for any ``k``.
    """
    return (np.asarray(raw) >> k) & 1


@dataclass(frozen=True)
class Fixed:
    """A two's-complement fixed-point format.

    Parameters
    ----------
    width:
        Total number of bits, including the sign bit.
    frac:
        Number of fractional bits; the engineering value of a raw integer
        ``r`` is ``r * 2**-frac``.  ``frac`` may exceed ``width`` (a purely
        fractional signal known to be small) or be negative (an integer
        signal with trailing implied zeros); filter datapaths in this
        package use ``0 <= frac < width + 8``.
    """

    width: int
    frac: int

    def __post_init__(self) -> None:
        if not 1 <= self.width <= _MAX_WIDTH:
            raise FixedPointError(
                f"width must be in [1, {_MAX_WIDTH}], got {self.width}"
            )

    # ------------------------------------------------------------------
    # Ranges
    # ------------------------------------------------------------------
    @property
    def min_raw(self) -> int:
        """Most negative representable raw integer."""
        return -(1 << (self.width - 1))

    @property
    def max_raw(self) -> int:
        """Most positive representable raw integer."""
        return (1 << (self.width - 1)) - 1

    @property
    def lsb(self) -> float:
        """Engineering weight of one raw unit."""
        return 2.0 ** -self.frac

    @property
    def min_value(self) -> float:
        """Most negative representable engineering value."""
        return self.min_raw * self.lsb

    @property
    def max_value(self) -> float:
        """Most positive representable engineering value."""
        return self.max_raw * self.lsb

    @property
    def half_scale(self) -> float:
        """Engineering value corresponding to normalized magnitude 1.

        A signal whose engineering magnitude stays below ``half_scale``
        never overflows this format.
        """
        return 2.0 ** (self.width - 1 - self.frac)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def contains(self, raw) -> bool:
        """True when every element of ``raw`` is representable."""
        arr = np.asarray(raw)
        return bool(np.all(arr >= self.min_raw) and np.all(arr <= self.max_raw))

    def wrap(self, raw):
        """Wrap ``raw`` into this format's range (hardware overflow)."""
        return wrap(raw, self.width)

    def saturate(self, raw):
        """Clamp ``raw`` into this format's range."""
        return np.clip(np.asarray(raw), self.min_raw, self.max_raw)

    def from_float(self, value, rounding: str = "round"):
        """Quantize engineering value(s) to raw integers.

        ``rounding`` is ``"round"`` (ties away from zero, via numpy round),
        ``"floor"`` (truncation toward minus infinity, what a hardware
        right-shift performs), or ``"nearest-even"``.  Values outside the
        representable range raise :class:`FixedPointError`.
        """
        scaled = np.asarray(value, dtype=np.float64) * (1 << self.frac) \
            if self.frac >= 0 else np.asarray(value, dtype=np.float64) / (1 << -self.frac)
        if rounding == "round":
            raw = np.floor(scaled + 0.5).astype(np.int64)
        elif rounding == "floor":
            raw = np.floor(scaled).astype(np.int64)
        elif rounding == "nearest-even":
            raw = np.rint(scaled).astype(np.int64)
        else:
            raise FixedPointError(f"unknown rounding mode {rounding!r}")
        if not self.contains(raw):
            raise FixedPointError(
                f"value out of range for {self}: engineering range is "
                f"[{self.min_value}, {self.max_value}]"
            )
        if np.isscalar(value):
            return int(raw)
        return raw

    def to_float(self, raw):
        """Engineering value(s) of raw integer(s)."""
        return np.asarray(raw, dtype=np.float64) * self.lsb

    def normalize(self, raw):
        """Normalized value(s) in ``[-1, 1)`` — the paper's convention."""
        return np.asarray(raw, dtype=np.float64) / (1 << (self.width - 1))

    def rescale_raw(self, raw, target: "Fixed"):
        """Re-express ``raw`` in ``target``'s binary point, truncating LSBs.

        Increasing precision is exact (left shift); decreasing precision
        truncates toward minus infinity, exactly like discarding wires in
        hardware.  The result is *not* wrapped — callers decide whether
        the target width applies.
        """
        delta = target.frac - self.frac
        arr = np.asarray(raw)
        if delta >= 0:
            return arr << delta
        return arr >> -delta

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q({self.width},{self.frac})"
