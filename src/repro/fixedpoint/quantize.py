"""Floating-point to fixed-point signal quantization helpers.

These are convenience wrappers used by the test-signal generators (sine,
noise) and by the filter designer when mapping ideal coefficients onto a
datapath format.
"""

from __future__ import annotations

import numpy as np

from ..errors import FixedPointError
from .qformat import Fixed

__all__ = ["quantize_signal", "quantization_noise_power", "dynamic_range_db"]


def quantize_signal(values, fmt: Fixed, rounding: str = "round", overflow: str = "error"):
    """Quantize a float signal to raw integers in ``fmt``.

    ``overflow`` selects what happens to out-of-range samples:
    ``"error"`` raises, ``"saturate"`` clamps, ``"wrap"`` wraps (two's
    complement overflow).
    """
    scaled = np.asarray(values, dtype=np.float64) * (1 << fmt.frac)
    if rounding == "round":
        raw = np.floor(scaled + 0.5).astype(np.int64)
    elif rounding == "floor":
        raw = np.floor(scaled).astype(np.int64)
    elif rounding == "nearest-even":
        raw = np.rint(scaled).astype(np.int64)
    else:
        raise FixedPointError(f"unknown rounding mode {rounding!r}")
    if overflow == "error":
        if not fmt.contains(raw):
            raise FixedPointError(f"signal exceeds range of {fmt}")
        return raw
    if overflow == "saturate":
        return fmt.saturate(raw)
    if overflow == "wrap":
        return fmt.wrap(raw)
    raise FixedPointError(f"unknown overflow mode {overflow!r}")


def quantization_noise_power(fmt: Fixed) -> float:
    """Power of the uniform quantization-noise model, ``lsb**2 / 12``."""
    return fmt.lsb**2 / 12.0


def dynamic_range_db(fmt: Fixed) -> float:
    """Full-scale to quantization-noise ratio in dB (≈ 6.02·width + 1.76)."""
    full_scale_power = fmt.half_scale**2 / 2.0  # full-scale sine
    return 10.0 * np.log10(full_scale_power / quantization_noise_power(fmt))
