"""Bit-exact arithmetic primitives shared by the RTL and gate simulators.

These functions operate on raw two's-complement integers (scalars or
``numpy`` integer arrays) and reproduce hardware behaviour exactly:

* additions and subtractions wrap on overflow (ripple-carry adders have no
  saturation logic);
* right shifts are arithmetic and truncate toward minus infinity;
* :func:`carry_chain` exposes the internal carry of a ripple-carry adder,
  which is what the fault model needs to know which full-adder input
  pattern each cell received.
"""

from __future__ import annotations

import numpy as np

from ..errors import FixedPointError
from .qformat import wrap

__all__ = [
    "wrap_add",
    "wrap_sub",
    "arith_shift_right",
    "carry_chain",
    "adder_cell_inputs",
    "cell_pattern_codes",
]


def wrap_add(a, b, width: int):
    """``a + b`` in ``width``-bit two's complement with wrap-around."""
    return wrap(np.asarray(a) + np.asarray(b), width)


def wrap_sub(a, b, width: int):
    """``a - b`` in ``width``-bit two's complement with wrap-around."""
    return wrap(np.asarray(a) - np.asarray(b), width)


def arith_shift_right(a, shift: int):
    """Arithmetic right shift (floor division by ``2**shift``)."""
    if shift < 0:
        raise FixedPointError(f"shift must be non-negative, got {shift}")
    return np.asarray(a) >> shift


def carry_chain(a, b, cin, width: int):
    """Carries inside a ``width``-bit ripple-carry adder.

    Parameters
    ----------
    a, b:
        Raw operand integers (scalars or arrays); only their low ``width``
        bits participate.  For a subtractor pass the bitwise complement of
        the subtrahend and ``cin=1``.
    cin:
        Carry into bit 0 (0 or 1, scalar or array).

    Returns
    -------
    numpy.ndarray
        ``carries`` with shape ``(width + 1,) + a.shape`` where
        ``carries[k]`` is the carry *into* bit ``k``; ``carries[width]``
        is the carry out of the MSB cell.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.broadcast_to(np.asarray(cin), np.broadcast_shapes(a.shape, b.shape)).astype(a.dtype, copy=True)
    out = np.empty((width + 1,) + c.shape, dtype=a.dtype)
    out[0] = c
    for k in range(width):
        ak = (a >> k) & 1
        bk = (b >> k) & 1
        c = (ak & bk) | (out[k] & (ak ^ bk))
        out[k + 1] = c
    return out


def adder_cell_inputs(a, b, cin, width: int, invert_b: bool = False):
    """Per-cell ``(a_k, b_k, c_k)`` bits of a ripple-carry add.

    ``invert_b`` models a subtractor: each cell sees the complemented
    ``b`` bit, and the caller is expected to pass ``cin=1``.

    Returns three arrays of shape ``(width,) + a.shape`` containing the
    bit seen on the primary input, secondary input, and carry input of
    each full-adder cell (LSB cell first).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if invert_b:
        b = ~b
    carries = carry_chain(a, b, cin, width)
    ks = np.arange(width)
    shape = (width,) + (1,) * a.ndim
    a_bits = (a[None, ...] >> ks.reshape(shape)) & 1
    b_bits = (b[None, ...] >> ks.reshape(shape)) & 1
    return a_bits, b_bits, carries[:width]


def cell_pattern_codes(a, b, cin, width: int, invert_b: bool = False):
    """Per-cell test-pattern codes ``n = (a<<2)|(b<<1)|c`` (paper's ``Tn``).

    The code at each full-adder cell identifies which of the eight tests
    T0..T7 the cell receives, with ``a`` the primary input bit, ``b`` the
    secondary input bit and ``c`` the carry input — the numbering used in
    Table 2 of the paper.

    Returns an array of shape ``(width,) + a.shape`` with dtype uint8.
    """
    a_bits, b_bits, c_bits = adder_cell_inputs(a, b, cin, width, invert_b=invert_b)
    return ((a_bits << 2) | (b_bits << 1) | c_bits).astype(np.uint8)
