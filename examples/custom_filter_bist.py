"""Full BIST flow on a user-supplied filter.

Shows the complete library surface on a filter that is *not* one of the
paper's designs: a 31-tap halfband-style lowpass given as plain float
coefficients.

1. quantize to CSD and build the scaled datapath;
2. report design statistics including structurally pruned faults;
3. pick a mixed test scheme and grade the fault universe;
4. split the residual misses into difficult vs near-redundant given an
   assumed worst-case operating signal;
5. screen a few faulty devices through the MISR-based session.

Run:  python examples/custom_filter_bist.py
"""

import numpy as np
from scipy import signal as sp_signal

from repro.bist import BistSession, propose_scheme
from repro.faultsim import (
    build_fault_universe,
    classify_missed_faults,
    coverage_summary,
    run_fault_coverage,
)
from repro.filters import design_statistics
from repro.generators import SineGenerator
from repro.rtl import design_from_coefficients

N_VECTORS = 8192


def main() -> None:
    # 1. a user filter: 31-tap lowpass, passband to 0.2
    coefs = sp_signal.firwin(31, 0.4)  # firwin cutoff is in Nyquist units
    design = design_from_coefficients(coefs, name="user-lp31",
                                      coef_frac=14, max_nonzeros=4)
    stats = design_statistics(design)
    print(f"{stats.name}: {stats.adders} operators, {stats.registers} "
          f"registers, {stats.faults} collapsed faults "
          f"({stats.uncollapsed_faults} uncollapsed)")

    # 2. pick a scheme and grade it
    scheme = propose_scheme(design, n_vectors=N_VECTORS)
    universe = build_fault_universe(design.graph, name=design.name)
    result = run_fault_coverage(design, scheme, N_VECTORS, universe=universe)
    print()
    print(coverage_summary(result))

    # 3. are the remaining misses serious?
    worst_case = SineGenerator(design.input_fmt.width, freq=0.05,
                               amplitude=0.95)
    classified = classify_missed_faults(design, result, worst_case,
                                        n_vectors=16384)
    print(f"\nresidual misses: {classified.serious_count} difficult "
          f"(activatable by the worst-case operating signal), "
          f"{len(classified.near_redundant)} near-redundant")

    # 4. screen a few faulty devices end to end through the MISR
    session = BistSession(design, scheme, n_vectors=N_VECTORS)
    detected_faults = [f for f in universe.faults
                       if result.detect_time[f.index] < N_VECTORS]
    rng = np.random.default_rng(42)
    sample = rng.choice(len(detected_faults), size=5, replace=False)
    print("\nscreening five faulty devices through the MISR session:")
    for i in sample:
        fault = detected_faults[int(i)]
        outcome = session.screen_fault(fault)
        verdict = "PASS (ALIASED!)" if outcome.passed else "FAIL (caught)"
        print(f"  {fault.label:42s} -> {verdict}")


if __name__ == "__main__":
    main()
