"""Exporting the model for external verification.

A hardware team consuming this library needs three artifacts:

1. a **JSON snapshot** of the exact datapath an experiment ran on
   (loadable back into the library, bit-for-bit identical),
2. **structural Verilog** of the gate-level netlist, for simulation or
   synthesis in an HDL flow, and
3. a **VCD waveform dump** of internal signals, diffable against the
   HDL simulation of that Verilog.

This example produces all three for the lowpass reference design and
demonstrates the round-trip property on the JSON path.

Run:  python examples/export_and_verify.py
"""

import os
import tempfile

import numpy as np

from repro.filters import lowpass_design
from repro.gates import elaborate, save_verilog
from repro.generators import Type1Lfsr
from repro.rtl import load_design, save_design, save_vcd, simulate


def main() -> None:
    design = lowpass_design()
    outdir = tempfile.mkdtemp(prefix="repro_export_")

    # 1. JSON snapshot + round trip
    json_path = os.path.join(outdir, "lp_design.json")
    save_design(design, json_path)
    clone = load_design(json_path)
    stim = Type1Lfsr(12).sequence(512)
    original = simulate(design.graph, stim).output
    reloaded = simulate(clone.graph, stim).output
    assert np.array_equal(original, reloaded)
    print(f"JSON snapshot: {json_path} "
          f"({os.path.getsize(json_path)} bytes, round-trip verified)")

    # 2. structural Verilog
    netlist = elaborate(design.graph)
    v_path = os.path.join(outdir, "lp_cut.v")
    save_verilog(netlist, v_path, module_name="lp_cut")
    print(f"Verilog netlist: {v_path} "
          f"({netlist.gate_count} gates, {len(netlist.dffs)} flops)")

    # 3. VCD dump of the paper's tap-20 signal under the LFSR test
    tap20 = design.tap_accumulator(20)
    result = simulate(design.graph, stim,
                      keep_nodes=[tap20, design.graph.output_id])
    vcd_path = os.path.join(outdir, "lp_waves.vcd")
    save_vcd(result, vcd_path, node_ids=[tap20, design.graph.output_id])
    print(f"VCD waveforms: {vcd_path} (open in GTKWave; note how small "
          f"the tap-20 swing stays under the plain LFSR)")


if __name__ == "__main__":
    main()
