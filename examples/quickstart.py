"""Quickstart: self-test a lowpass filter and compare test generators.

Builds the paper's 60-register lowpass reference design, runs a 4k-vector
BIST session for each of the four classic generators, and prints the
coverage each achieves — reproducing the core observation of the paper in
a dozen lines of user code.

Run:  python examples/quickstart.py
"""

from repro.bist import BistSession
from repro.filters import lowpass_design
from repro.generators import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    RampGenerator,
    Type1Lfsr,
)


def main() -> None:
    design = lowpass_design()
    print(f"design {design.name}: {design.adder_count} ripple-carry "
          f"operators, {design.register_count} registers, "
          f"output {design.output_fmt}")

    n_vectors = 4096
    for gen in (Type1Lfsr(12), DecorrelatedLfsr(12), MaxVarianceLfsr(12),
                RampGenerator(12)):
        session = BistSession(design, gen, n_vectors=n_vectors)
        result = session.grade()
        print(f"  {gen.name:12s} coverage {100 * result.coverage():6.2f}%  "
              f"missed {result.missed():5d} of "
              f"{result.universe.fault_count} faults  "
              f"(golden signature {session.golden_signature():#06x})")

    print("\nNote how every generator tops 98% coverage, yet the missed-"
          "fault counts differ by factors — the paper's starting point.")


if __name__ == "__main__":
    main()
