"""Frequency-domain generator selection (Table 3 + Section 9 in practice).

For each reference filter this example:

1. ranks the candidate generators by the spectral compatibility ratio
   ``sigma_y^2(G,H) / sigma_y^2(flat, H)``,
2. asks the selector for a concrete test scheme, and
3. verifies by fault simulation that the proposed scheme beats the naive
   Type 1 LFSR baseline.

Run:  python examples/generator_selection.py
"""

from repro.bist import propose_scheme, rank_generators
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.filters import reference_designs
from repro.generators import Type1Lfsr

N_VECTORS = 4096


def main() -> None:
    for name, design in reference_designs().items():
        print(f"\n=== {name} ({design.kind}) ===")
        print("generator compatibility (rating, ratio):")
        for rank in rank_generators(design):
            print(f"  {rank.generator.name:12s} {rank.rating}  "
                  f"{rank.ratio:7.3f}")

        scheme = propose_scheme(design, n_vectors=N_VECTORS)
        print(f"proposed scheme: {scheme.name}")

        universe = build_fault_universe(design.graph, name=name)
        baseline = run_fault_coverage(design, Type1Lfsr(12), N_VECTORS,
                                      universe=universe)
        proposed = run_fault_coverage(design, scheme, N_VECTORS,
                                      universe=universe)
        print(f"missed faults: plain LFSR {baseline.missed():4d}  ->  "
              f"proposed {proposed.missed():4d} "
              f"({baseline.missed() / max(1, proposed.missed()):.1f}x fewer)")


if __name__ == "__main__":
    main()
