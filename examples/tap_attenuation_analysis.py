"""Predicting test problems before fault simulation (Section 7).

Walks the paper's tap-20 analysis chain on the lowpass design:

1. Eq. 1 variance propagation flags attenuated operators for the Type 1
   LFSR but not for the decorrelated one;
2. the predicted sigma at tap 20 matches bit-true simulation;
3. the exact amplitude-distribution prediction overlays the simulated
   histogram (Figures 8/9) and shows the Figure 1 test zones starving.

Run:  python examples/tap_attenuation_analysis.py
"""

import numpy as np

from repro.analysis import (
    decorrelated_lfsr_model,
    flag_attenuated_nodes,
    predicted_sigma_at_tap,
    predicted_tap_distribution,
    simulated_tap_histogram,
    type1_lfsr_model,
    zone_probabilities,
)
from repro.filters import lowpass_design
from repro.generators import DecorrelatedLfsr, Type1Lfsr

TAP = 20


def main() -> None:
    design = lowpass_design()
    m1 = type1_lfsr_model(12)
    md = decorrelated_lfsr_model(12)

    print("operators flagged as attenuated (>= 2 unexercised upper bits):")
    for model, label in ((m1, "LFSR-1"), (md, "LFSR-D")):
        flagged = flag_attenuated_nodes(design, model, threshold_bits=2.0)
        print(f"  under {label}: {len(flagged)} operators"
              + (f", worst {flagged[0].name} "
                 f"({flagged[0].untested_upper_bits:.1f} bits)"
                 if flagged else ""))

    print(f"\npredicted vs simulated sigma at tap {TAP}:")
    for model, gen in ((m1, Type1Lfsr(12)), (md, DecorrelatedLfsr(12))):
        pred = predicted_sigma_at_tap(design, TAP, model)
        nid = design.tap_accumulator(TAP)
        from repro.rtl import simulate
        measured = simulate(design.graph, gen.sequence(8192),
                            keep_nodes=[nid]).normalized(nid).std()
        print(f"  {gen.name:12s} predicted {pred:.4f}  measured {measured:.4f}"
              f"   (paper: 0.036 / 0.121)")

    print(f"\ntest-zone hit probabilities at tap {TAP} "
          "(zones of Figure 1, beta=0.05):")
    for model, label in ((m1, "LFSR-1"), (md, "LFSR-D")):
        dist = predicted_tap_distribution(design, TAP, model)
        probs = zone_probabilities(dist, beta=0.05)
        t1 = probs["T1a"] + probs["T1b"]
        t2 = probs["T2a"] + probs["T2b"]
        print(f"  under {label}: P(T1 zones) = {t1:.2e}   "
              f"P(T2 zones) = {t2:.3f}")

    print("\ndistribution check (theory vs 16k-vector histogram):")
    pred = predicted_tap_distribution(design, TAP, m1)
    hist = simulated_tap_histogram(design, TAP, Type1Lfsr(12),
                                   n_vectors=16384, bins=101,
                                   span=pred.grid[-1])
    pred_on = np.interp(hist.grid, pred.grid, pred.pdf)
    overlap = np.sum(np.minimum(pred_on, hist.pdf)) * hist.bin_width
    print(f"  overlap coefficient: {overlap:.3f} (1.0 = identical)")


if __name__ == "__main__":
    main()
