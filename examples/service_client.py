"""Evaluation service walk-through: boot a server, submit jobs, poll.

Starts an in-process evaluation service on an ephemeral port (the same
machinery `repro serve` runs), then drives it through the bundled
stdlib HTTP client: a generator ranking, a batch of spectrum requests
submitted concurrently (the server fuses them into one vectorized FFT
pass), an idempotent retry, and a look at /metrics — finishing with a
graceful drain.

Against an already-running server, point ServiceClient at it instead:

    repro serve --port 8337            # terminal 1
    python examples/service_client.py http://127.0.0.1:8337

Run:  python examples/service_client.py
"""

import sys

from repro.service import ServiceConfig, ServiceThread
from repro.service.client import ServiceClient


def drive(client: ServiceClient) -> None:
    client.wait_ready(timeout=120)

    # --- one ranking job, submit + long-poll in one call -------------
    result = client.run("rank", {"design": "BP", "vectors": 2048})
    print(f"BP ranking -> proposed scheme {result['proposed_scheme']}")
    for entry in result["rankings"]:
        print(f"  {entry['generator']:12s} {entry['rating']}  "
              f"{entry['ratio']:7.3f}")

    # --- a burst of spectrum jobs; the server batches them -----------
    jobs = [client.submit("spectrum", {"generator": g, "width": 10,
                                       "points": 8})
            for g in ("lfsr1", "lfsr2", "lfsrd", "lfsrm", "ramp")]
    print("\npeak spectral line per generator:")
    for job in jobs:
        doc = client.wait(job["id"], timeout=120)
        spec = doc["result"]
        peak = max(zip(spec["power_db"], spec["freqs"]))
        print(f"  {spec['generator']:12s} {peak[0]:8.2f} dB "
              f"at f={peak[1]:.3f}")

    # --- idempotency: the retry returns the same job -----------------
    first = client.submit("rank", {"design": "LP"},
                          idempotency_key="demo-rank-lp")
    retry = client.submit("rank", {"design": "LP"},
                          idempotency_key="demo-rank-lp")
    print(f"\nidempotent retry: {first['id']} == {retry['id']} -> "
          f"{first['id'] == retry['id']}")
    client.wait(first["id"], timeout=120)

    # --- what the server saw -----------------------------------------
    metrics = client.metrics()["service"]
    print(f"server totals: {metrics['jobs_done']} done, "
          f"{metrics['jobs_coalesced']} coalesced, "
          f"{metrics['batches']} batches, "
          f"queue {metrics['queue_depth']}/{metrics['queue_capacity']}")


def main() -> None:
    if len(sys.argv) > 1:  # drive an external server
        drive(ServiceClient(sys.argv[1], client_id="example-client"))
        return
    config = ServiceConfig(port=0, no_cache=True, workers=2, batch_max=8)
    with ServiceThread(config) as svc:
        print(f"service up on {svc.base_url}")
        drive(svc.client("example-client"))
    summary = svc.summary
    print(f"drained: {summary['done']} done, {summary['failed']} failed")


if __name__ == "__main__":
    main()
