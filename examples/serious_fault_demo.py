"""When 99% isn't enough — the Section 5 / Figure 2 experiment.

Runs the standard LFSR BIST session on the lowpass design, picks one of
the faults it misses, shows that the fault sits in the upper bits of a
mid-chain tap, then injects it and drives the *faulty* filter with an
ordinary in-band sine wave: the output shows a spike train a user would
absolutely notice, despite the >99%% BIST coverage.

Run:  python examples/serious_fault_demo.py
"""

import numpy as np

from repro.experiments import ExperimentContext, find_serious_missed_fault
from repro.experiments.render import waveform_sketch
from repro.faultsim import fault_effect, faulty_output
from repro.generators import SineGenerator


def main() -> None:
    ctx = ExperimentContext()
    design = ctx.designs["LP"]

    lfsr_session = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"],
                                ctx.config.table4_vectors)
    print(f"LFSR-1 BIST session: {100 * lfsr_session.coverage():.2f}% "
          f"fault coverage, {lfsr_session.missed()} faults missed")

    miss = find_serious_missed_fault(ctx)
    node = design.graph.node(miss.fault.node_id)
    print(f"\npicked missed fault: {miss.fault.label}")
    print(f"  location: tap {node.tap}, "
          f"{node.fmt.width - 1 - miss.fault.bit} bits below the MSB")
    detecting = [f"T{p}" for p in range(8)
                 if miss.fault.effective_mask & (1 << p)]
    print(f"  detectable only by difficult test(s): {', '.join(detecting)}")

    sine = SineGenerator(12, freq=miss.freq, amplitude=miss.amplitude)
    bad = faulty_output(design, miss.fault, sine, 2000)
    err = fault_effect(design, miss.fault, sine, 2000)
    print(f"\ndriving the faulty device with a sine at f={miss.freq:.4f}, "
          f"amplitude {miss.amplitude}:")
    print(f"  {np.sum(err != 0)} corrupted output samples, "
          f"peak error {np.max(np.abs(err)):.3f} (full scale = 1.0)")
    print()
    print(waveform_sketch(bad[:400], title="faulty output (note the spikes)"))


if __name__ == "__main__":
    main()
